// Benchmarks: one per table and figure of the paper's evaluation section,
// each regenerating its artifact through the internal/exp harness, plus
// ablation benches for the design choices called out in DESIGN.md §5.
//
// Run the full paper-scale suite with
//
//	go test -bench=. -benchmem
//
// or a fast smoke pass with -short (Quick-scale inputs; shapes preserved,
// absolute numbers not comparable to the paper).
package pario_test

import (
	"io"
	"runtime"
	"strconv"
	"testing"

	"pario/internal/apps/btio"
	"pario/internal/apps/fft"
	"pario/internal/apps/scf"
	"pario/internal/exp"
	"pario/internal/machine"
)

// benchScale picks the experiment scale from -short.
func benchScale() exp.Scale {
	if testing.Short() {
		return exp.Quick
	}
	return exp.Full
}

// benchExperiment runs one registered experiment per iteration. Sweep
// points run through the parallel runner on all CPUs, so these benches
// measure the path cmd/ioexp takes by default.
func benchExperiment(b *testing.B, id string) {
	e := exp.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	prev := exp.SetWorkers(runtime.NumCPU())
	defer exp.SetWorkers(prev)
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWorkers pits the sequential sweep against the parallel one
// on a many-point artifact, so the runner's scaling shows up directly in
// the bench output (compare j=1 with j=NumCPU).
func BenchmarkSweepWorkers(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = counts[:1]
	}
	for _, j := range counts {
		b.Run("j="+strconv.Itoa(j), func(b *testing.B) {
			prev := exp.SetWorkers(j)
			defer exp.SetWorkers(prev)
			e := exp.ByID("fig1")
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard, benchScale()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// One benchmark per paper artifact.

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Ablation benches (DESIGN.md §5). Each reports the simulated quantity of
// interest as a custom metric so the effect is visible in the bench output.

// BenchmarkAblationPrefetchDepth sweeps the SCF read-phase prefetch depth.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	m, err := machine.ParagonLarge(12)
	if err != nil {
		b.Fatal(err)
	}
	in := scf.Input{Name: "bench", N: 64}
	if !testing.Short() {
		in = scf.Medium
	}
	for _, depth := range []int{1, 2, 4} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var io float64
			for i := 0; i < b.N; i++ {
				rep, err := scf.Run11(scf.Config11{
					Machine: m, Input: in, Procs: 4,
					Version: scf.PassionPrefetch, PrefetchDepth: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				io = rep.IOMaxSec
			}
			b.ReportMetric(io, "simIOsec")
		})
	}
}

// BenchmarkAblationStripeUnit sweeps the PFS stripe unit on the SCF
// workload (generalizing Figure 1's tuple VI).
func BenchmarkAblationStripeUnit(b *testing.B) {
	m, err := machine.ParagonLarge(12)
	if err != nil {
		b.Fatal(err)
	}
	in := scf.Input{Name: "bench", N: 64}
	if !testing.Short() {
		in = scf.Medium
	}
	for _, su := range []int64{16, 64, 256} {
		b.Run(benchName("suKB", int(su)), func(b *testing.B) {
			var io float64
			for i := 0; i < b.N; i++ {
				rep, err := scf.Run11(scf.Config11{
					Machine: m, Input: in, Procs: 4,
					Version: scf.Passion, StripeUnitKB: su,
				})
				if err != nil {
					b.Fatal(err)
				}
				io = rep.IOMaxSec
			}
			b.ReportMetric(io, "simIOsec")
		})
	}
}

// BenchmarkAblationWriteBehind toggles the I/O-node write-behind cache on
// the write-dominant BTIO workload.
func BenchmarkAblationWriteBehind(b *testing.B) {
	cls := btio.Class{Name: "bench", N: 32, Dumps: 5}
	if !testing.Short() {
		cls = btio.Class{Name: "bench", N: 64, Dumps: 10}
	}
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			var io float64
			for i := 0; i < b.N; i++ {
				m, err := machine.SP2()
				if err != nil {
					b.Fatal(err)
				}
				if !cache {
					m.Node.CacheBytes = 0
				}
				rep, err := btio.Run(btio.Config{Machine: m, Procs: 16, Class: cls})
				if err != nil {
					b.Fatal(err)
				}
				io = rep.IOMaxSec
			}
			b.ReportMetric(io, "simIOsec")
		})
	}
}

// BenchmarkAblationSeekPenalty scales the disk seek cost on the
// seek-dominated unoptimized FFT transpose.
func BenchmarkAblationSeekPenalty(b *testing.B) {
	n, buf := int64(512), int64(512<<10)
	if !testing.Short() {
		n, buf = 2048, 4<<20
	}
	for _, scale := range []float64{0.5, 1, 2} {
		b.Run(benchName("seekX100", int(scale*100)), func(b *testing.B) {
			var io float64
			for i := 0; i < b.N; i++ {
				m, err := machine.ParagonSmall(2)
				if err != nil {
					b.Fatal(err)
				}
				m.Node.Disk.SeekMin *= scale
				m.Node.Disk.SeekMax *= scale
				rep, err := fft.Run(fft.Config{Machine: m, Procs: 4, N: n, BufferBytes: buf})
				if err != nil {
					b.Fatal(err)
				}
				io = rep.IOMaxSec
			}
			b.ReportMetric(io, "simIOsec")
		})
	}
}

// BenchmarkAblationBalancedFiles toggles SCF 3.0's integral-file
// balancing (release 3.0's "within 10% or 1 MB" feature).
func BenchmarkAblationBalancedFiles(b *testing.B) {
	m, err := machine.ParagonLarge(16)
	if err != nil {
		b.Fatal(err)
	}
	in := scf.Input{Name: "bench", N: 64}
	if !testing.Short() {
		in = scf.Medium
	}
	for _, bal := range []bool{true, false} {
		name := "balance=on"
		if !bal {
			name = "balance=off"
		}
		b.Run(name, func(b *testing.B) {
			var execSec float64
			for i := 0; i < b.N; i++ {
				rep, err := scf.Run30(scf.Config30{
					Machine: m, Input: in, Procs: 8, CachedPct: 100, Balance: bal,
				})
				if err != nil {
					b.Fatal(err)
				}
				execSec = rep.ExecSec
			}
			b.ReportMetric(execSec, "simExecSec")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}
