package main

import (
	"testing"

	"pario/internal/machine"
	"pario/internal/pio"
	"pario/internal/workload"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"64", 64},
		{"4K", 4 << 10},
		{"16M", 16 << 20},
		{"1G", 1 << 30},
		{" 2m ", 2 << 20},
	}
	for _, c := range cases {
		if got := parseSize(c.in); got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestReplaySmokes replays a small workload under each of the machine's
// interfaces — the program's main loop minus the flag parsing.
func TestReplaySmokes(t *testing.T) {
	cfg, err := machine.ParagonLarge(12)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{
		Pattern:      workload.Strided,
		TotalBytes:   1 << 20,
		RequestBytes: 64 << 10,
		Stride:       32 << 10,
		Seed:         1,
	}
	reqs, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	for _, iface := range []pio.ClientParams{cfg.Fortran, cfg.Passion, cfg.Native} {
		rep, err := replay(cfg, iface, 2, reqs)
		if err != nil {
			t.Fatalf("%s: %v", iface.Name, err)
		}
		if rep.BytesRead <= 0 {
			t.Fatalf("%s: replay read nothing", iface.Name)
		}
		if rep.ExecSec <= 0 {
			t.Fatalf("%s: non-positive exec time", iface.Name)
		}
	}
}
