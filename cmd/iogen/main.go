// Command iogen generates a synthetic I/O workload and replays it against
// a simulated machine under each I/O interface — a microbenchmark driver
// for the machine models. With -emit-trace it instead writes the workload
// as a replayable trace file (see internal/trace) for pariod, iosim
// -trace, or the tracerep experiment; -adversary swaps the pattern
// generator for one of the adversarial trace shapes.
//
// Usage:
//
//	iogen -pattern strided -total 64M -req 4K -stride 60K -procs 8
//	iogen -pattern random -total 16M -req 64K -writefrac 0.5
//	iogen -pattern hotspot -total 16M -req 16K -emit-trace hot.ptrt
//	iogen -adversary appendstorm -procs 8 -events 256 -emit-trace storm.ptrt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pario/internal/core"
	"pario/internal/machine"
	"pario/internal/pio"
	"pario/internal/sim"
	"pario/internal/trace"
	"pario/internal/workload"
)

func main() {
	var (
		pattern   = flag.String("pattern", "sequential", "sequential | strided | random | hotspot")
		total     = flag.String("total", "16M", "total volume (K/M/G suffixes)")
		req       = flag.String("req", "64K", "request size")
		stride    = flag.String("stride", "0", "gap between strided requests")
		writeFrac = flag.Float64("writefrac", 0, "fraction of writes")
		procs     = flag.Int("procs", 4, "processes replaying the stream concurrently")
		ionodes   = flag.Int("ionodes", 12, "Paragon I/O partition: 12, 16 or 64")
		seed      = flag.Uint64("seed", 1, "generator seed")
		emitTrace = flag.String("emit-trace", "", "write the workload as a trace file instead of replaying")
		adversary = flag.String("adversary", "", "adversarial generator: "+strings.Join(trace.Adversaries, " | "))
		events    = flag.Int("events", 128, "per-rank event count for -adversary")
		compute   = flag.Float64("compute", 100e-6, "per-event compute gap in seconds for -emit-trace")
	)
	flag.Parse()

	if *adversary != "" {
		if *emitTrace == "" {
			fmt.Fprintf(os.Stderr, "iogen: -adversary needs -emit-trace FILE\n")
			os.Exit(2)
		}
		t := trace.Generate(*adversary, *procs, *events, *seed)
		if t == nil {
			fmt.Fprintf(os.Stderr, "iogen: unknown adversary %q (%s)\n",
				*adversary, strings.Join(trace.Adversaries, " | "))
			os.Exit(2)
		}
		writeTrace(*emitTrace, t)
		return
	}

	pat, ok := map[string]workload.Pattern{
		"sequential": workload.Sequential,
		"strided":    workload.Strided,
		"random":     workload.Random,
		"hotspot":    workload.Hotspot,
	}[strings.ToLower(*pattern)]
	if !ok {
		fmt.Fprintf(os.Stderr, "iogen: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	spec := workload.Spec{
		Pattern:      pat,
		TotalBytes:   parseSize(*total),
		RequestBytes: parseSize(*req),
		Stride:       parseSize(*stride),
		WriteFrac:    *writeFrac,
		Seed:         *seed,
	}
	if *emitTrace != "" {
		t, err := spec.Trace(*procs, *compute)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
			os.Exit(1)
		}
		writeTrace(*emitTrace, t)
		return
	}
	reqs, err := spec.Requests()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
		os.Exit(1)
	}
	cfg, err := machine.ParagonLarge(*ionodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %s, %d requests of <=%s, %.0f%% writes, %d procs on %s\n\n",
		pat, len(reqs), *req, 100**writeFrac, *procs, cfg.Name)
	fmt.Printf("%-12s %12s %14s %14s\n", "interface", "exec", "per-proc I/O", "app MB/s")
	for _, iface := range []pio.ClientParams{cfg.Fortran, cfg.Passion, cfg.Native} {
		rep, err := replay(cfg, iface, *procs, reqs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %11.2fs %13.2fs %14.2f\n",
			iface.Name, rep.ExecSec, rep.IOMaxSec, rep.BandwidthMBs())
	}
}

// writeTrace writes t's canonical text encoding and reports the content
// hash a server would register the upload under.
func writeTrace(path string, t *trace.Trace) {
	if err := os.WriteFile(path, t.EncodeText(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ranks, %d events, %d bytes of I/O\ntrace:%s\n",
		path, len(t.Ranks), t.Events(), t.Bytes(), t.Hash())
}

// replay runs the request stream on each of procs ranks (each rank has a
// private copy of the stream in its own file).
func replay(cfg *machine.Config, iface pio.ClientParams, procs int, reqs []workload.Request) (core.Report, error) {
	sys, err := core.NewSystem(cfg, procs)
	if err != nil {
		return core.Report{}, err
	}
	extent := workload.MaxExtent(reqs)
	wall, err := sys.RunRanks(func(p *sim.Proc, rank int) {
		f, ferr := sys.FS.Create("gen."+strconv.Itoa(rank), sys.DefaultLayout(), extent)
		if ferr != nil {
			panic(ferr)
		}
		h := sys.Client(rank, iface).Open(p, f)
		workload.Replay(p, h, reqs, 0, cfg.CPUFlops)
		h.Close(p)
	})
	if err != nil {
		return core.Report{}, err
	}
	return sys.MakeReport(wall), nil
}

// parseSize parses 64, 64K, 4M, 1G via the shared hardened parser;
// malformed, negative and overflowing sizes exit 2 with a clear message.
func parseSize(s string) int64 {
	v, err := workload.ParseSize(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iogen: %v\n", err)
		os.Exit(2)
	}
	return v
}
