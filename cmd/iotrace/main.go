// Command iotrace prints the Pablo-style per-operation I/O summary (the
// format of the paper's Tables 2-3) for an application configuration — the
// instrumentation view of a run.
//
// Usage:
//
//	iotrace -app scf11 -procs 4 -input LARGE -version passion
//	iotrace -app btio -procs 16 -opt
//	iotrace -app fft -procs 4 -capture fft.ptrt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pario/internal/apps/btio"
	"pario/internal/apps/fft"
	"pario/internal/apps/scf"
	"pario/internal/core"
	"pario/internal/machine"
	"pario/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "scf11", "scf11 | fft | btio")
		procs   = flag.Int("procs", 4, "compute processes")
		input   = flag.String("input", "MEDIUM", "scf input: SMALL | MEDIUM | LARGE")
		version = flag.String("version", "original", "scf11: original | passion | prefetch")
		opt     = flag.Bool("opt", false, "apply the application's optimization")
		capture = flag.String("capture", "", "also write the run's captured I/O trace to FILE")
	)
	flag.Parse()

	if *capture != "" {
		core.SetDefaultCapture(true)
	}
	rep, err := runApp(*app, *procs, *input, *version, *opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotrace: %v\n", err)
		os.Exit(1)
	}
	if *capture != "" {
		t := trace.FromCaptured(rep.Captured, captureIface(*app, *version), strings.ToLower(*app))
		if err := t.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "iotrace: captured trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*capture, t.EncodeText(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "iotrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("captured %d events across %d ranks to %s\ntrace:%s\n\n",
			t.Events(), len(t.Ranks), *capture, t.Hash())
	}
	fmt.Printf("%s, %d processes — aggregated I/O operation summary\n", rep.Machine, rep.Procs)
	fmt.Printf("(percentages against exec time aggregated across processes, as in the paper)\n\n")
	fmt.Print(rep.Trace.Table(rep.ExecSec * float64(rep.Procs)))
	fmt.Printf("\nper-process I/O time: %.2f s; exec: %.2f s; bandwidth: %.2f MB/s; "+
		"I/O imbalance (max/mean): %.2f; busiest I/O node at %.0f%% of exec\n\n",
		rep.IOMaxSec, rep.ExecSec, rep.BandwidthMBs(), rep.IOImbalance(),
		100*rep.MaxIONodeUtil())
	for _, op := range []trace.Op{trace.Read, trace.Write} {
		if rep.Trace.Get(op).Count > 0 {
			fmt.Println(rep.Trace.HistogramString(op))
		}
	}
}

// captureIface picks the trace's replay-interface hint from the app's own
// interface: SCF's original deck is Fortran-style, its optimized versions
// PASSION-style; everything else maps onto the native client.
func captureIface(app, version string) string {
	if strings.ToLower(app) == "scf11" {
		switch strings.ToLower(version) {
		case "passion", "prefetch":
			return "passion"
		default:
			return "fortran"
		}
	}
	return "native"
}

func runApp(app string, procs int, input, version string, opt bool) (core.Report, error) {
	switch strings.ToLower(app) {
	case "scf11":
		m, err := machine.ParagonLarge(12)
		if err != nil {
			return core.Report{}, err
		}
		ins := map[string]scf.Input{"SMALL": scf.Small, "MEDIUM": scf.Medium, "LARGE": scf.Large}
		in, ok := ins[strings.ToUpper(input)]
		if !ok {
			return core.Report{}, fmt.Errorf("unknown input %q", input)
		}
		v := map[string]scf.Version{
			"original": scf.Original, "passion": scf.Passion, "prefetch": scf.PassionPrefetch,
		}[strings.ToLower(version)]
		return scf.Run11(scf.Config11{Machine: m, Input: in, Procs: procs, Version: v})
	case "fft":
		m, err := machine.ParagonSmall(2)
		if err != nil {
			return core.Report{}, err
		}
		return fft.Run(fft.Config{Machine: m, Procs: procs, OptimizedLayout: opt})
	case "btio":
		m, err := machine.SP2()
		if err != nil {
			return core.Report{}, err
		}
		return btio.Run(btio.Config{Machine: m, Procs: procs, Class: btio.ClassA, Collective: opt})
	default:
		return core.Report{}, fmt.Errorf("unknown app %q", app)
	}
}
