package main

import (
	"testing"

	"pario/internal/trace"
)

func TestRunAppProducesTrace(t *testing.T) {
	rep, err := runApp("fft", 2, "SMALL", "original", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no trace recorder on report")
	}
	if rep.Trace.Get(trace.Read).Count == 0 && rep.Trace.Get(trace.Write).Count == 0 {
		t.Fatal("trace recorded no data operations")
	}
	if rep.Trace.Table(rep.ExecSec*float64(rep.Procs)) == "" {
		t.Fatal("empty summary table")
	}
}

func TestRunAppUnknown(t *testing.T) {
	if _, err := runApp("nope", 2, "SMALL", "original", false); err == nil {
		t.Fatal("unknown app accepted")
	}
}
