package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonLifecycle drives the whole binary through its seam: start on
// an ephemeral port, health-check, serve one cold run and one cached
// rerun (asserting the run counter did not move), then drain gracefully.
func TestDaemonLifecycle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8",
			"-batch-queue", "8", "-max-sweep-points", "64", "-max-sweeps", "2"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	const reqBody = `{"app":"scf11","procs":4,"input":"SMALL"}`
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}
	cold, body1 := post()
	if cold.StatusCode != http.StatusOK || cold.Header.Get("X-Pario-Cache") != "miss" {
		t.Fatalf("cold: status %d cache %q", cold.StatusCode, cold.Header.Get("X-Pario-Cache"))
	}
	warm, body2 := post()
	if warm.StatusCode != http.StatusOK || warm.Header.Get("X-Pario-Cache") != "hit" {
		t.Fatalf("warm: status %d cache %q", warm.StatusCode, warm.Header.Get("X-Pario-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached body differs from fresh body")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		RunsTotal int64 `json:"runs_total"`
		CacheHits int64 `json:"cache_hits"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.RunsTotal != 1 || m.CacheHits != 1 {
		t.Fatalf("runs/hits = %d/%d, want 1/1", m.RunsTotal, m.CacheHits)
	}

	// A sweep over the already-cached point plus one cold neighbor streams
	// two NDJSON lines and a done summary through the batch lane.
	sresp, err := http.Get(base + "/sweep?app=scf11&procs=4,8&input=SMALL")
	if err != nil {
		t.Fatal(err)
	}
	sweepRaw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", sresp.StatusCode, sweepRaw)
	}
	if got := sresp.Header.Get("X-Pario-Sweep-Points"); got != "2" {
		t.Fatalf("sweep points header = %q, want 2", got)
	}
	lines := strings.Split(strings.TrimRight(string(sweepRaw), "\n"), "\n")
	if len(lines) != 3 || !strings.Contains(lines[2], `"done":true`) {
		t.Fatalf("sweep stream = %d lines (%q), want 2 points + summary", len(lines), sweepRaw)
	}

	close(stop)
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("stdout missing drain confirmation: %s", stdout.String())
	}
}

// TestPprofHook smokes the -pprof-addr flag: the profiling mux comes up on
// its own listener, the index and a fast profile answer 200, and the
// service mux does NOT expose /debug/pprof/ — profiling stays an explicit,
// separately addressable opt-in.
func TestPprofHook(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	stop := make(chan struct{})
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-pprof-addr", "127.0.0.1:0", "-max-parallel", "4"},
			&stdout, &stderr, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}

	// The startup log names the pprof address.
	var paddr string
	deadline := time.Now().Add(5 * time.Second)
	for paddr == "" && time.Now().Before(deadline) {
		for _, line := range strings.Split(stdout.String(), "\n") {
			if strings.HasPrefix(line, "pariod: pprof on http://") {
				paddr = strings.TrimSuffix(strings.TrimPrefix(line, "pariod: pprof on http://"), "/debug/pprof/")
			}
		}
		if paddr == "" {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if paddr == "" {
		t.Fatalf("no pprof address in startup log: %s", stdout.String())
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + paddr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof %s: status %d", path, resp.StatusCode)
		}
	}

	// The service listener must not serve profiling handlers.
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service mux exposes /debug/pprof/")
	}

	close(stop)
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestDaemonBadFlags pins the usage exit code, including malformed cluster
// flags — a node that cannot build its ring must refuse to start rather
// than silently serve single-node.
func TestDaemonBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"-peers", "ftp://bad:1,127.0.0.1:2"},
		{"-peers", "127.0.0.1:1,127.0.0.1:2", "-node-id", "5"},
		{"-peers", "127.0.0.1:1"},
	} {
		if code := run(args, &stdout, &stderr, nil, nil); code != 2 {
			t.Fatalf("run(%v) exit code %d, want 2", args, code)
		}
	}
}

// TestDaemonDiskCacheRestart drives the single-node persistence story
// through the binary seam: run once with -cache-dir, drain, start a fresh
// process on the same directory, and the same request answers from disk
// (X-Pario-Cache: l2) without a single new simulation.
func TestDaemonDiskCacheRestart(t *testing.T) {
	dir := t.TempDir()
	const reqBody = `{"app":"fft","procs":4,"input":"65536"}`

	boot := func() (addr string, stop chan struct{}, exited chan int, out *bytes.Buffer) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		ready := make(chan string, 1)
		stop = make(chan struct{})
		exited = make(chan int, 1)
		go func() {
			exited <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1",
				"-cache-dir", dir, "-cache-disk-bytes", "1048576"},
				&stdout, &stderr, ready, stop)
		}()
		select {
		case addr = <-ready:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not come up; stderr: %s", stderr.String())
		}
		return addr, stop, exited, &stdout
	}
	post := func(addr string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/run", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}
	drain := func(stop chan struct{}, exited chan int) {
		t.Helper()
		close(stop)
		select {
		case code := <-exited:
			if code != 0 {
				t.Fatalf("exit code %d", code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}

	addr, stop, exited, _ := boot()
	cold, body1 := post(addr)
	if cold.StatusCode != http.StatusOK || cold.Header.Get("X-Pario-Cache") != "miss" {
		t.Fatalf("cold: status %d cache %q", cold.StatusCode, cold.Header.Get("X-Pario-Cache"))
	}
	drain(stop, exited)

	addr2, stop2, exited2, out2 := boot()
	warm, body2 := post(addr2)
	if warm.StatusCode != http.StatusOK || warm.Header.Get("X-Pario-Cache") != "l2" {
		t.Fatalf("after restart: status %d cache %q, want 200 l2", warm.StatusCode, warm.Header.Get("X-Pario-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("disk-served body differs from the original")
	}
	mresp, err := http.Get("http://" + addr2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		RunsTotal int64 `json:"runs_total"`
		L2Hits    int64 `json:"l2_hits"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.RunsTotal != 0 || m.L2Hits != 1 {
		t.Fatalf("after restart: runs=%d l2_hits=%d, want 0/1", m.RunsTotal, m.L2Hits)
	}
	if !strings.Contains(out2.String(), "entries") {
		t.Fatalf("startup log missing disk-cache recovery line: %s", out2.String())
	}
	drain(stop2, exited2)
}
