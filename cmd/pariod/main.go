// Command pariod is the simulation-serving daemon: a long-running HTTP
// JSON service over the iosim parameter space, with job scheduling on a
// bounded worker pool, a content-addressed result cache, singleflight
// collapsing of concurrent identical requests, queue-bound backpressure
// (429) and per-request timeouts that cancel the simulation itself.
//
// Usage:
//
//	pariod                         # serve on :8080
//	pariod -addr 127.0.0.1:0       # ephemeral port (printed on startup)
//	pariod -workers 8 -queue 128 -cache 1024 -timeout 30s
//	pariod -batch-queue 512 -max-sweep-points 8192 -max-sweeps 2
//	pariod -max-parallel 8                  # intra-run event lanes for interactive runs
//	pariod -pprof-addr 127.0.0.1:6060      # net/http/pprof on its own listener
//
// Endpoints:
//
//	POST /run      {"app":"fft","procs":8,"opt":true}   (or GET with query params)
//	GET  /sweep    ?app=fft&procs=1,2,4,8&ionodes=1..16&opt=both   (ranges expand
//	               server-side; results stream back as NDJSON, one line per point,
//	               on a lower-priority batch lane; ?format=sse for event streams)
//	GET  /healthz
//	GET  /metrics
//
// Both /run and /sweep also take ?mode=estimate: the request (or the whole
// expanded grid) is answered from the analytic roofline model instead of
// simulating — inline, in microseconds, without consuming a scheduler
// slot. Estimates are cached under mode-marked keys disjoint from the
// exact results; fault-plan requests answer a structured 422
// (estimate_unsupported).
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish and their
// responses are written in full before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pario/internal/serve"
)

// startPprof serves the net/http/pprof handlers on their own listener and
// mux — never the service mux, so profiling exposure is an explicit,
// separately addressable choice (loopback by default in production). The
// bound address is returned for the startup log.
func startPprof(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr(), nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// run is the whole daemon behind a testable seam: argv in, exit code out.
// ready, when non-nil, receives the bound address once the listener is up;
// closing stop triggers the same graceful drain a signal would. Both are
// nil in production.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("pariod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 64, "interactive (/run) admission queue depth; a full queue answers 429")
		batchQueue = fs.Int("batch-queue", 256, "batch (/sweep) lane queue depth; sweeps block on it as flow control")
		cache      = fs.Int("cache", 512, "result cache capacity in entries")
		timeout    = fs.Duration("timeout", 60*time.Second, "per-request ceiling (requests may ask for less via ?timeout_sec=)")
		maxPoints  = fs.Int("max-sweep-points", 4096, "largest expanded grid one /sweep may name")
		maxSweeps  = fs.Int("max-sweeps", 4, "concurrently streaming sweeps; excess sweeps answer 429")
		maxPar     = fs.Int("max-parallel", 1, "widest intra-run event parallelism one run may use (1 = sequential)")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *pprofAddr != "" {
		paddr, err := startPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pariod: pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pariod: pprof on http://%s/debug/pprof/\n", paddr)
	}

	srv := serve.New(serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		BatchQueueDepth: *batchQueue,
		CacheEntries:    *cache,
		Timeout:         *timeout,
		MaxSweepPoints:  *maxPoints,
		MaxSweeps:       *maxSweeps,
		MaxParallel:     *maxPar,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "pariod: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pariod: listening on http://%s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready <- bound.String()
	}
	var cause string
	select {
	case s := <-sig:
		cause = s.String()
	case <-stop:
		cause = "stop"
	}
	fmt.Fprintf(stdout, "pariod: %s, draining (up to %v)\n", cause, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "pariod: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pariod: drained, bye")
	return 0
}
