// Command pariod is the simulation-serving daemon: a long-running HTTP
// JSON service over the iosim parameter space, with job scheduling on a
// bounded worker pool, a content-addressed result cache, singleflight
// collapsing of concurrent identical requests, queue-bound backpressure
// (429) and per-request timeouts that cancel the simulation itself.
//
// Usage:
//
//	pariod                         # serve on :8080
//	pariod -addr 127.0.0.1:0       # ephemeral port (printed on startup)
//	pariod -workers 8 -queue 128 -cache 1024 -timeout 30s
//	pariod -batch-queue 512 -max-sweep-points 8192 -max-sweeps 2
//	pariod -max-parallel 8                  # intra-run event lanes for interactive runs
//	pariod -pprof-addr 127.0.0.1:6060      # net/http/pprof on its own listener
//	pariod -cache-dir /var/lib/pario -cache-disk-bytes 1073741824
//	                                       # persistent disk (L2) result cache
//	pariod -addr :7471 -node-id 0 \
//	       -peers 127.0.0.1:7471,127.0.0.1:7472,127.0.0.1:7473
//	                                       # one node of a sharded cluster
//
// Endpoints:
//
//	POST /run      {"app":"fft","procs":8,"opt":true}   (or GET with query params)
//	GET  /sweep    ?app=fft&procs=1,2,4,8&ionodes=1..16&opt=both   (ranges expand
//	               server-side; results stream back as NDJSON, one line per point,
//	               on a lower-priority batch lane; ?format=sse for event streams)
//	POST /trace    (body: a trace file, text or binary encoding) registers the
//	               trace and answers its content hash; replay it with
//	               {"app":"trace","trace":"<hash>"} on /run or /sweep, or inline
//	               the upload as base64 "trace_data" on the run request itself
//	GET  /trace    ?trace=<hash> returns the registered trace's text encoding
//	GET  /healthz
//	GET  /metrics
//
// Both /run and /sweep also take ?mode=estimate: the request (or the whole
// expanded grid) is answered from the analytic roofline model instead of
// simulating — inline, in microseconds, without consuming a scheduler
// slot. Estimates are cached under mode-marked keys disjoint from the
// exact results; fault-plan requests answer a structured 422
// (estimate_unsupported).
//
// Cluster mode (-peers + -node-id) shards the content-address space across
// a static peer list with rendezvous hashing: each key's owner simulates
// it, every other node proxies /run there and fans /sweep points out, so
// the cluster as a whole never simulates a key twice. Every node takes the
// identical -peers list; -node-id is this node's position in it. The disk
// cache (-cache-dir) persists results across restarts: a restarted node
// re-serves everything it ever simulated without re-running the kernel.
//
// /healthz is liveness (200 while the process is alive, draining included);
// /healthz?ready=1 is readiness (503 once draining starts).
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish and their
// responses are written in full before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pario/internal/cluster"
	"pario/internal/diskcache"
	"pario/internal/serve"
)

// startPprof serves the net/http/pprof handlers on their own listener and
// mux — never the service mux, so profiling exposure is an explicit,
// separately addressable choice (loopback by default in production). The
// bound address is returned for the startup log.
func startPprof(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr(), nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// run is the whole daemon behind a testable seam: argv in, exit code out.
// ready, when non-nil, receives the bound address once the listener is up;
// closing stop triggers the same graceful drain a signal would. Both are
// nil in production.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("pariod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address (port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 64, "interactive (/run) admission queue depth; a full queue answers 429")
		batchQueue = fs.Int("batch-queue", 256, "batch (/sweep) lane queue depth; sweeps block on it as flow control")
		cache      = fs.Int("cache", 512, "result cache capacity in entries")
		cacheBytes = fs.Int64("cache-bytes", 0, "additional in-memory cache bound in total body bytes (0 = entries only)")
		cacheDir   = fs.String("cache-dir", "", "persistent disk (L2) result cache directory (empty = off)")
		diskBytes  = fs.Int64("cache-disk-bytes", 1<<30, "disk cache size bound in bytes (with -cache-dir)")
		peers      = fs.String("peers", "", "comma-separated cluster peer list, this node included (empty = single-node)")
		nodeID     = fs.Int("node-id", 0, "this node's index into -peers")
		timeout    = fs.Duration("timeout", 60*time.Second, "per-request ceiling (requests may ask for less via ?timeout_sec=)")
		maxPoints  = fs.Int("max-sweep-points", 4096, "largest expanded grid one /sweep may name")
		maxSweeps  = fs.Int("max-sweeps", 4, "concurrently streaming sweeps; excess sweeps answer 429")
		maxPar     = fs.Int("max-parallel", 1, "widest intra-run event parallelism one run may use (1 = sequential)")
		traceStore = fs.Int64("trace-store-bytes", 256<<20, "uploaded-trace registry bound in canonical-encoding bytes (LRU)")
		traceMax   = fs.Int64("trace-max-bytes", 32<<20, "largest single trace upload accepted")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *pprofAddr != "" {
		paddr, err := startPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pariod: pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pariod: pprof on http://%s/debug/pprof/\n", paddr)
	}

	var ring *cluster.Ring
	if *peers != "" {
		list, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintf(stderr, "pariod: %v\n", err)
			return 2
		}
		ring, err = cluster.New(list, *nodeID)
		if err != nil {
			fmt.Fprintf(stderr, "pariod: %v\n", err)
			return 2
		}
	}

	var l2 *diskcache.Cache
	if *cacheDir != "" {
		var err error
		l2, err = diskcache.Open(*cacheDir, *diskBytes)
		if err != nil {
			fmt.Fprintf(stderr, "pariod: disk cache: %v\n", err)
			return 1
		}
		defer l2.Close()
		fmt.Fprintf(stdout, "pariod: disk cache %s: %d entries, %d bytes recovered\n",
			l2.Dir(), l2.Len(), l2.Bytes())
	}

	srv := serve.New(serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		BatchQueueDepth: *batchQueue,
		CacheEntries:    *cache,
		CacheBytes:      *cacheBytes,
		L2:              l2,
		Cluster:         ring,
		Timeout:         *timeout,
		MaxSweepPoints:  *maxPoints,
		MaxSweeps:       *maxSweeps,
		MaxParallel:     *maxPar,
		TraceStoreBytes: *traceStore,
		TraceMaxBytes:   *traceMax,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "pariod: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pariod: listening on http://%s\n", bound)
	if ring != nil {
		fmt.Fprintf(stdout, "pariod: cluster node %d of %d, self %s\n",
			ring.Self().ID, ring.Len(), ring.Self().URL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if ready != nil {
		ready <- bound.String()
	}
	var cause string
	select {
	case s := <-sig:
		cause = s.String()
	case <-stop:
		cause = "stop"
	}
	fmt.Fprintf(stdout, "pariod: %s, draining (up to %v)\n", cause, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "pariod: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pariod: drained, bye")
	return 0
}
