// Command iosim runs a single application configuration on a simulated
// machine and prints its report: the everyday driver for exploring the
// parameter space outside the paper's fixed sweeps.
//
// Usage:
//
//	iosim -app fft -procs 8 -ionodes 2 -opt
//	iosim -app scf11 -procs 4 -input LARGE -version passion
//	iosim -app scf30 -procs 32 -cached 90
//	iosim -app btio -procs 16 -class A -opt
//	iosim -app ast -procs 32 -ionodes 64 -opt
//	iosim -app fft -procs 8 -json        # the pariod wire encoding
//	iosim -app ast -procs 16 -faults "disk:0:degrade=8@t=0.5s..2s;retry=4"
//	iosim -app btio -procs 64 -opt -estimate   # analytic roofline, no simulation
//	iosim -trace fft.ptrt -version passion -opt   # replay a captured trace file
//
// -json emits the exact request/report encoding the pariod service serves
// (one shared codec in internal/serve), so CLI and server outputs are
// byte-identical for the same configuration.
//
// -estimate answers the analytic roofline prediction instead of running the
// simulation: predicted elapsed time, per-layer bytes and the binding
// bottleneck, in microseconds. With -json it emits the exact body
// pariod's /run?mode=estimate serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"pario/internal/core"
	"pario/internal/serve"
	"pario/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "", "scf11 | scf30 | fft | btio | ast")
		procs    = flag.Int("procs", 4, "compute processes")
		ionodes  = flag.Int("ionodes", 0, "I/O nodes (0 = app's paper default)")
		opt      = flag.Bool("opt", false, "apply the application's optimization")
		input    = flag.String("input", "MEDIUM", "scf input: SMALL | MEDIUM | LARGE")
		version  = flag.String("version", "original", "scf11 version: original | passion | prefetch")
		cached   = flag.Int("cached", 90, "scf30: % of integrals cached on disk (0 selects the default)")
		class    = flag.String("class", "A", "btio class: A | B")
		faults   = flag.String("faults", "", `fault plan, e.g. "disk:0:degrade=8@t=1.5s..4s;retry=4" (see internal/fault)`)
		jsonFlag = flag.Bool("json", false, "emit the pariod service's JSON encoding instead of the text report")
		estimate = flag.Bool("estimate", false, "answer the analytic roofline estimate instead of simulating")
		simPar   = flag.Int("sim-parallel", 1, "intra-run event-execution lanes to request (1 = sequential)")
		traceIn  = flag.String("trace", "", "replay a trace file (app becomes \"trace\"; -version picks fortran | passion | native)")
	)
	flag.Parse()
	core.SetDefaultParallel(*simPar)

	if *estimate {
		os.Exit(runEstimate(*app, *procs, *ionodes, *opt, *input, *version, *cached, *class, *faults, *jsonFlag))
	}

	var req serve.Request
	var rep core.Report
	var err error
	if *traceIn != "" {
		versionSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "version" {
				versionSet = true
			}
		})
		v := ""
		if versionSet {
			v = *version
		}
		req, rep, err = runTrace(*traceIn, v, *ionodes, *opt, *faults)
	} else {
		req, rep, err = run(*app, *procs, *ionodes, *opt, *input, *version, *cached, *class, *faults)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iosim: %v (%s)\n", err, core.ErrorClass(err))
		os.Exit(1)
	}
	if *jsonFlag {
		body, err := serve.Encode(req, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(body)
		return
	}
	fmt.Printf("machine:     %s\n", rep.Machine)
	fmt.Printf("processes:   %d (on %d I/O nodes)\n", rep.Procs, rep.IONodes)
	fmt.Printf("exec time:   %.2f s\n", rep.ExecSec)
	fmt.Printf("I/O time:    %.2f s per process (%.1f%% of exec)\n", rep.IOMaxSec, rep.IOPctOfExec())
	fmt.Printf("volume:      %.1f MB read, %.1f MB written\n",
		float64(rep.BytesRead)/1e6, float64(rep.BytesWritten)/1e6)
	fmt.Printf("bandwidth:   %.2f MB/s\n\n", rep.BandwidthMBs())
	fmt.Println(rep.Trace.Table(rep.ExecSec * float64(rep.Procs)))
}

// runEstimate prices the flag tuple analytically through the same
// canonicalize → estimate path pariod's /run?mode=estimate takes.
func runEstimate(app string, procs, ionodes int, opt bool, input, version string, cached int, class, faults string, jsonOut bool) int {
	req, err := serve.Canonicalize(serve.Request{
		App:       app,
		Procs:     procs,
		IONodes:   ionodes,
		Opt:       opt,
		Input:     input,
		Version:   version,
		CachedPct: cached,
		Class:     class,
		Faults:    faults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iosim: %v (%s)\n", err, core.ErrorClass(err))
		return 1
	}
	est, err := serve.EstimateFor(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iosim: %v (%s)\n", err, core.ErrorClass(err))
		return 1
	}
	if jsonOut {
		body, err := serve.EncodeEstimate(req, est)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: %v\n", err)
			return 1
		}
		os.Stdout.Write(body)
		return 0
	}
	fmt.Printf("machine:     %s (analytic estimate)\n", est.Machine)
	fmt.Printf("processes:   %d (on %d I/O nodes)\n", est.Procs, est.IONodes)
	fmt.Printf("predicted:   %.2f s elapsed (%.2f s compute, %.2f s I/O)\n",
		est.ElapsedSec, est.ComputeSec, est.IOSec)
	fmt.Printf("bottleneck:  %s\n", est.Bottleneck)
	fmt.Printf("ceilings:    overhead %.2f s, seek %.2f s, disk %.2f s, link %.2f s\n",
		est.OverheadSec, est.SeekSec, est.DiskSec, est.LinkSec)
	fmt.Printf("volume:      %.1f MB client, %.1f MB link, %.1f MB disk\n",
		float64(est.ClientBytes)/1e6, float64(est.LinkBytes)/1e6, float64(est.DiskBytes)/1e6)
	fmt.Printf("bandwidth:   %.2f MB/s\n\n", est.BandwidthMBs)
	for _, ph := range est.Phases {
		over := ""
		if ph.Overlapped {
			over = " (overlapped)"
		}
		fmt.Printf("  %-12s %10.2f s  %s%s\n", ph.Name, ph.ElapsedSec, ph.Bound, over)
	}
	return 0
}

// runTrace loads a trace file and replays it through the service's shared
// trace path — the same canonicalized request and execution pariod serves
// for an uploaded copy of the file, so the reports are byte-identical.
// version empty defers to the trace's own interface hint (native when the
// hint is absent or names no replayable client).
func runTrace(path, version string, ionodes int, opt bool, faults string) (serve.Request, core.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	t, err := trace.Decode(data)
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	if version == "" {
		switch t.Iface {
		case "fortran", "passion", "native":
			version = t.Iface
		}
	}
	req, err := serve.Canonicalize(serve.Request{
		App: "trace", Trace: t.Hash(), IONodes: ionodes, Opt: opt,
		Version: version, Faults: faults,
	})
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	rep, err := serve.ExecuteTrace(context.Background(), req, 0, t)
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	return req, rep, nil
}

// run canonicalizes the flag tuple into a serve.Request and executes it
// through the service's shared path, so iosim answers exactly what pariod
// would serve for the same configuration.
func run(app string, procs, ionodes int, opt bool, input, version string, cached int, class, faults string) (serve.Request, core.Report, error) {
	req, err := serve.Canonicalize(serve.Request{
		App:       app,
		Procs:     procs,
		IONodes:   ionodes,
		Opt:       opt,
		Input:     input,
		Version:   version,
		CachedPct: cached,
		Class:     class,
		Faults:    faults,
	})
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	rep, err := serve.Execute(context.Background(), req)
	if err != nil {
		return serve.Request{}, core.Report{}, err
	}
	return req, rep, nil
}
