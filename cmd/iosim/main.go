// Command iosim runs a single application configuration on a simulated
// machine and prints its report: the everyday driver for exploring the
// parameter space outside the paper's fixed sweeps.
//
// Usage:
//
//	iosim -app fft -procs 8 -ionodes 2 -opt
//	iosim -app scf11 -procs 4 -input LARGE -version passion
//	iosim -app scf30 -procs 32 -cached 90
//	iosim -app btio -procs 16 -class A -opt
//	iosim -app ast -procs 32 -ionodes 64 -opt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pario/internal/apps/ast"
	"pario/internal/apps/btio"
	"pario/internal/apps/fft"
	"pario/internal/apps/scf"
	"pario/internal/core"
	"pario/internal/machine"
)

func main() {
	var (
		app     = flag.String("app", "", "scf11 | scf30 | fft | btio | ast")
		procs   = flag.Int("procs", 4, "compute processes")
		ionodes = flag.Int("ionodes", 0, "I/O nodes (0 = app's paper default)")
		opt     = flag.Bool("opt", false, "apply the application's optimization")
		input   = flag.String("input", "MEDIUM", "scf input: SMALL | MEDIUM | LARGE")
		version = flag.String("version", "original", "scf11 version: original | passion | prefetch")
		cached  = flag.Int("cached", 90, "scf30: % of integrals cached on disk")
		class   = flag.String("class", "A", "btio class: A | B")
	)
	flag.Parse()

	rep, err := run(*app, *procs, *ionodes, *opt, *input, *version, *cached, *class)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iosim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("machine:     %s\n", rep.Machine)
	fmt.Printf("processes:   %d (on %d I/O nodes)\n", rep.Procs, rep.IONodes)
	fmt.Printf("exec time:   %.2f s\n", rep.ExecSec)
	fmt.Printf("I/O time:    %.2f s per process (%.1f%% of exec)\n", rep.IOMaxSec, rep.IOPctOfExec())
	fmt.Printf("volume:      %.1f MB read, %.1f MB written\n",
		float64(rep.BytesRead)/1e6, float64(rep.BytesWritten)/1e6)
	fmt.Printf("bandwidth:   %.2f MB/s\n\n", rep.BandwidthMBs())
	fmt.Println(rep.Trace.Table(rep.ExecSec * float64(rep.Procs)))
}

func run(app string, procs, ionodes int, opt bool, input, version string, cached int, class string) (core.Report, error) {
	scfIn := map[string]scf.Input{"SMALL": scf.Small, "MEDIUM": scf.Medium, "LARGE": scf.Large}
	switch strings.ToLower(app) {
	case "scf11":
		nio := ionodes
		if nio == 0 {
			nio = 12
		}
		m, err := machine.ParagonLarge(nio)
		if err != nil {
			return core.Report{}, err
		}
		in, ok := scfIn[strings.ToUpper(input)]
		if !ok {
			return core.Report{}, fmt.Errorf("unknown input %q", input)
		}
		v := scf.Original
		switch strings.ToLower(version) {
		case "original":
		case "passion":
			v = scf.Passion
		case "prefetch":
			v = scf.PassionPrefetch
		default:
			return core.Report{}, fmt.Errorf("unknown version %q", version)
		}
		if opt {
			v = scf.PassionPrefetch
		}
		return scf.Run11(scf.Config11{Machine: m, Input: in, Procs: procs, Version: v})
	case "scf30":
		nio := ionodes
		if nio == 0 {
			nio = 16
		}
		m, err := machine.ParagonLarge(nio)
		if err != nil {
			return core.Report{}, err
		}
		in, ok := scfIn[strings.ToUpper(input)]
		if !ok {
			return core.Report{}, fmt.Errorf("unknown input %q", input)
		}
		return scf.Run30(scf.Config30{Machine: m, Input: in, Procs: procs, CachedPct: cached, Balance: true})
	case "fft":
		nio := ionodes
		if nio == 0 {
			nio = 2
		}
		m, err := machine.ParagonSmall(nio)
		if err != nil {
			return core.Report{}, err
		}
		return fft.Run(fft.Config{Machine: m, Procs: procs, OptimizedLayout: opt})
	case "btio":
		m, err := machine.SP2()
		if err != nil {
			return core.Report{}, err
		}
		cls := btio.ClassA
		if strings.ToUpper(class) == "B" {
			cls = btio.ClassB
		}
		return btio.Run(btio.Config{Machine: m, Procs: procs, Class: cls, Collective: opt})
	case "ast":
		nio := ionodes
		if nio == 0 {
			nio = 16
		}
		m, err := machine.ParagonLarge(nio)
		if err != nil {
			return core.Report{}, err
		}
		return ast.Run(ast.Config{Machine: m, Procs: procs, Optimized: opt})
	default:
		return core.Report{}, fmt.Errorf("unknown app %q (scf11|scf30|fft|btio|ast)", app)
	}
}
