package main

import (
	"bytes"
	"testing"

	"pario/internal/serve"
)

// TestRunApps smoke-tests the driver's dispatch for every application at
// sizes that simulate in well under a second each.
func TestRunApps(t *testing.T) {
	// btio and ast run their optimized versions: same dispatch path, an
	// order of magnitude fewer simulated requests at the paper sizes.
	cases := []struct {
		name string
		app  string
		opt  bool
	}{
		{"scf11", "scf11", false},
		{"scf30", "scf30", false},
		{"fft", "fft", false},
		{"btio", "btio", true},
		{"ast", "ast", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, rep, err := run(c.app, 4, 0, c.opt, "SMALL", "original", 90, "A", "")
			if err != nil {
				t.Fatal(err)
			}
			if req.App != c.app {
				t.Fatalf("canonical app = %q", req.App)
			}
			if rep.ExecSec <= 0 {
				t.Fatalf("%s: non-positive exec time %g", c.app, rep.ExecSec)
			}
			if rep.BytesRead+rep.BytesWritten <= 0 {
				t.Fatalf("%s: no I/O simulated", c.app)
			}
			if rep.Stats == nil {
				t.Fatalf("%s: report missing metrics snapshot", c.app)
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, _, err := run("nope", 4, 0, false, "SMALL", "original", 90, "A", ""); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, _, err := run("scf11", 4, 0, false, "HUGE", "original", 90, "A", ""); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, _, err := run("scf11", 4, 0, false, "SMALL", "turbo", 90, "A", ""); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestJSONOutputMatchesService pins the -json satellite: the CLI's encoding
// is the service codec verbatim, so for one configuration the daemon's
// response body and iosim -json are byte-identical.
func TestJSONOutputMatchesService(t *testing.T) {
	req, rep, err := run("scf11", 4, 0, false, "SMALL", "original", 90, "A", "")
	if err != nil {
		t.Fatal(err)
	}
	cliBody, err := serve.Encode(req, rep)
	if err != nil {
		t.Fatal(err)
	}
	// What the service would serve: canonicalize the equivalent request
	// and encode its (deterministic) run through the same codec.
	canon, err := serve.Canonicalize(serve.Request{App: "scf11", Input: "small"})
	if err != nil {
		t.Fatal(err)
	}
	svcRep, err := serve.Execute(nil, canon)
	if err != nil {
		t.Fatal(err)
	}
	svcBody, err := serve.Encode(canon, svcRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cliBody, svcBody) {
		t.Fatal("iosim -json body differs from the service encoding for the same config")
	}
}
