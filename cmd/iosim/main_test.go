package main

import "testing"

// TestRunApps smoke-tests the driver's dispatch for every application at
// sizes that simulate in well under a second each.
func TestRunApps(t *testing.T) {
	// btio and ast run their optimized versions: same dispatch path, an
	// order of magnitude fewer simulated requests at the paper sizes.
	cases := []struct {
		name string
		app  string
		opt  bool
	}{
		{"scf11", "scf11", false},
		{"scf30", "scf30", false},
		{"fft", "fft", false},
		{"btio", "btio", true},
		{"ast", "ast", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, err := run(c.app, 4, 0, c.opt, "SMALL", "original", 90, "A")
			if err != nil {
				t.Fatal(err)
			}
			if rep.ExecSec <= 0 {
				t.Fatalf("%s: non-positive exec time %g", c.app, rep.ExecSec)
			}
			if rep.BytesRead+rep.BytesWritten <= 0 {
				t.Fatalf("%s: no I/O simulated", c.app)
			}
			if rep.Stats == nil {
				t.Fatalf("%s: report missing metrics snapshot", c.app)
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run("nope", 4, 0, false, "SMALL", "original", 90, "A"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := run("scf11", 4, 0, false, "HUGE", "original", 90, "A"); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := run("scf11", 4, 0, false, "SMALL", "turbo", 90, "A"); err == nil {
		t.Fatal("unknown version accepted")
	}
}
