package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, id := range []string{"table2", "fig7", "table5"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunArtifactWithMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "quick", "-j", "2", "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"All I/O", "-- table2 metrics --", "disk.seeks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "table2 completed") {
		t.Errorf("stderr missing timing summary:\n%s", errb.String())
	}
}

func TestRunMetricsJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "quick", "-metrics-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"counters"`) || !strings.Contains(out.String(), `"wall_sec"`) {
		t.Errorf("no JSON snapshot in output:\n%s", out.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment: exit %d, want 2", code)
	}
	if code := run([]string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale: exit %d, want 2", code)
	}
}

func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := run([]string{
		"-exp", "table2", "-scale", "quick",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	var out, errb bytes.Buffer
	bad := filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof")
	if code := run([]string{"-cpuprofile", bad, "-exp", "table2", "-scale", "quick"}, &out, &errb); code != 2 {
		t.Fatalf("bad cpuprofile path: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "cpuprofile") {
		t.Errorf("stderr missing cpuprofile error:\n%s", errb.String())
	}
	bad = filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof")
	if code := run([]string{"-memprofile", bad, "-exp", "table2", "-scale", "quick"}, &out, &errb); code != 2 {
		t.Fatalf("bad memprofile path: exit %d, want 2", code)
	}
}
