package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, id := range []string{"table2", "fig7", "table5"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunArtifactWithMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "table2", "-scale", "quick", "-j", "2", "-metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"All I/O", "-- table2 metrics --", "disk.seeks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "table2 completed") {
		t.Errorf("stderr missing timing summary:\n%s", errb.String())
	}
}

func TestRunMetricsJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "table3", "-scale", "quick", "-metrics-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"counters"`) || !strings.Contains(out.String(), `"wall_sec"`) {
		t.Errorf("no JSON snapshot in output:\n%s", out.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment: exit %d, want 2", code)
	}
	if code := run([]string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale: exit %d, want 2", code)
	}
}
