// Command ioexp regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	ioexp -exp table2            # one artifact, full scale
//	ioexp -exp all -scale quick  # everything, smoke-test sizes
//	ioexp -exp all -j 8          # sweep points on 8 workers
//
// Artifact ids: table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 table4
// table5 (plus any registered ablations; -list shows all).
//
// Each artifact is a sweep over independent simulated runs; -j sets how
// many run concurrently (default: all CPUs). Artifact output goes to
// stdout and is byte-identical at any worker count; timing summaries go
// to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pario/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "all", "experiment id, or 'all'")
		scale = flag.String("scale", "full", "'full' (paper sizes) or 'quick' (smoke test)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		jobs  = flag.Int("j", runtime.NumCPU(), "concurrent sweep points per experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var s exp.Scale
	switch *scale {
	case "full":
		s = exp.Full
	case "quick":
		s = exp.Quick
	default:
		fmt.Fprintf(os.Stderr, "ioexp: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	exp.SetWorkers(*jobs)

	var totalStats exp.Stats
	var totalElapsed time.Duration
	run := func(e *exp.Experiment) {
		start := time.Now()
		fmt.Printf("== %s: %s [%s scale] ==\n", e.ID, e.Title, s)
		fmt.Printf("paper: %s\n\n", e.Expect)
		if err := e.Run(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "ioexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		st := exp.TakeStats()
		fmt.Fprintf(os.Stderr, "[%s completed in %v — %s, j=%d]\n",
			e.ID, elapsed.Round(time.Millisecond), st, exp.Workers())
		totalStats.Add(st)
		totalElapsed += elapsed
		fmt.Println()
	}

	if *id == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		fmt.Fprintf(os.Stderr, "[all artifacts in %v — %s, j=%d]\n",
			totalElapsed.Round(time.Millisecond), totalStats, exp.Workers())
		return
	}
	e := exp.ByID(*id)
	if e == nil {
		fmt.Fprintf(os.Stderr, "ioexp: unknown experiment %q (use -list)\n", *id)
		os.Exit(2)
	}
	run(e)
}
