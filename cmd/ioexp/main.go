// Command ioexp regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	ioexp -exp table2            # one artifact, full scale
//	ioexp -exp all -scale quick  # everything, smoke-test sizes
//
// Artifact ids: table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 table4
// table5 (plus any registered ablations; -list shows all).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pario/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "all", "experiment id, or 'all'")
		scale = flag.String("scale", "full", "'full' (paper sizes) or 'quick' (smoke test)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var s exp.Scale
	switch *scale {
	case "full":
		s = exp.Full
	case "quick":
		s = exp.Quick
	default:
		fmt.Fprintf(os.Stderr, "ioexp: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(e *exp.Experiment) {
		start := time.Now()
		fmt.Printf("== %s: %s [%s scale] ==\n", e.ID, e.Title, s)
		fmt.Printf("paper: %s\n\n", e.Expect)
		if err := e.Run(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "ioexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *id == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e := exp.ByID(*id)
	if e == nil {
		fmt.Fprintf(os.Stderr, "ioexp: unknown experiment %q (use -list)\n", *id)
		os.Exit(2)
	}
	run(e)
}
