// Command ioexp regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	ioexp -exp table2            # one artifact, full scale
//	ioexp -exp all -scale quick  # everything, smoke-test sizes
//	ioexp -exp all -j 8          # sweep points on 8 workers
//	ioexp -exp fig1 -metrics     # append the cross-layer metrics table
//	ioexp -exp fig1 -metrics-json  # machine-readable metrics snapshot
//	ioexp -exp fig1 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Artifact ids: table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 table4
// table5 (plus any registered ablations; -list shows all).
//
// Each artifact is a sweep over independent simulated runs; -j sets how
// many run concurrently (default: all CPUs). Artifact output goes to
// stdout and is byte-identical at any worker count; timing summaries go
// to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pario/internal/core"

	"pario/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: argv in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ioexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id      = fs.String("exp", "all", "experiment id, or 'all'")
		scale   = fs.String("scale", "full", "'full' (paper sizes) or 'quick' (smoke test)")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		jobs    = fs.Int("j", runtime.NumCPU(), "concurrent sweep points per experiment")
		metrics = fs.Bool("metrics", false, "print each artifact's cross-layer metrics table")
		metJSON = fs.Bool("metrics-json", false, "print each artifact's metrics snapshot as JSON")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to `file`")
		memProf = fs.String("memprofile", "", "write a heap profile to `file` on exit")
		simPar  = fs.Int("sim-parallel", 1, "intra-run event-execution lanes to request (1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	core.SetDefaultParallel(*simPar)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "ioexp: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "ioexp: cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "ioexp: memprofile: %v\n", err)
			return 2
		}
		defer func() {
			runtime.GC() // materialize the final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "ioexp: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var s exp.Scale
	switch *scale {
	case "full":
		s = exp.Full
	case "quick":
		s = exp.Quick
	default:
		fmt.Fprintf(stderr, "ioexp: unknown scale %q\n", *scale)
		return 2
	}
	exp.SetWorkers(*jobs)

	var totalStats exp.Stats
	var totalElapsed time.Duration
	runOne := func(e *exp.Experiment) int {
		start := time.Now()
		fmt.Fprintf(stdout, "== %s: %s [%s scale] ==\n", e.ID, e.Title, s)
		fmt.Fprintf(stdout, "paper: %s\n\n", e.Expect)
		if err := e.Run(stdout, s); err != nil {
			fmt.Fprintf(stderr, "ioexp: %s: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start)
		st := exp.TakeStats()
		snap := exp.TakeSnapshot()
		if *metrics && snap != nil {
			fmt.Fprintf(stdout, "\n-- %s metrics --\n%s", e.ID, snap.Table())
		}
		if *metJSON && snap != nil {
			j, jerr := snap.JSON()
			if jerr != nil {
				fmt.Fprintf(stderr, "ioexp: %s: metrics json: %v\n", e.ID, jerr)
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", j)
		}
		fmt.Fprintf(stderr, "[%s completed in %v — %s, j=%d]\n",
			e.ID, elapsed.Round(time.Millisecond), st, exp.Workers())
		totalStats.Add(st)
		totalElapsed += elapsed
		fmt.Fprintln(stdout)
		return 0
	}

	if *id == "all" {
		for _, e := range exp.All() {
			if code := runOne(e); code != 0 {
				return code
			}
		}
		fmt.Fprintf(stderr, "[all artifacts in %v — %s, j=%d]\n",
			totalElapsed.Round(time.Millisecond), totalStats, exp.Workers())
		return 0
	}
	e := exp.ByID(*id)
	if e == nil {
		fmt.Fprintf(stderr, "ioexp: unknown experiment %q (use -list)\n", *id)
		return 2
	}
	return runOne(e)
}
