package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDriveInProcess runs a small mixed stream against an in-process
// server and requires the runs==misses invariant to hold (exit 0).
func TestDriveInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "16", "-c", "4", "-hot", "0.75"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "hit rate") || !strings.Contains(out, "OK:") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

func TestDriveRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-hot", "1.5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
