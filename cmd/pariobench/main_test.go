package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDriveInProcess runs a small mixed stream against an in-process
// server and requires the runs==misses invariant to hold (exit 0).
func TestDriveInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "16", "-c", "4", "-hot", "0.75"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "hit rate") || !strings.Contains(out, "OK:") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

// TestSweepDriveInProcess runs the sweep drive against an in-process server
// and requires the full sweep contract (points accounting, runs == cold
// points, byte-identical replay, all-cache repeat) to hold.
func TestSweepDriveInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sweep", "app=fft&procs=1,2,4&opt=both"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "6 points") || !strings.Contains(out, "byte-identical") ||
		!strings.Contains(out, "OK:") {
		t.Fatalf("unexpected sweep report:\n%s", out)
	}
}

// TestParallelDriveInProcess runs the parallelism contract drive against a
// paired sequential/parallel server and requires byte-identity, accounted
// wide grants, and the p99 report.
func TestParallelDriveInProcess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-parallel", "4", "-n", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "byte-identical across the pair") ||
		!strings.Contains(out, "latency p99") || !strings.Contains(out, "OK:") {
		t.Fatalf("unexpected parallel report:\n%s", out)
	}
}

func TestParallelDriveRejectsAddr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-parallel", "2", "-addr", "127.0.0.1:1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestSweepDriveRejectsBadSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sweep", "app=warp"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "sweep") {
		t.Fatalf("stderr missing sweep diagnosis: %s", stderr.String())
	}
}

func TestDriveRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-hot", "1.5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
