// Command pariobench is the load driver for pariod: it fires a mixed
// stream of hot (repeated) and cold (distinct) run requests at a daemon,
// prints throughput and cache hit-rate, and verifies from the daemon's
// run-counter metric — not timing — that the cached path never
// re-simulates: the number of simulations executed must equal exactly the
// number of cache misses observed on the wire.
//
// With -sweep it instead drives the /sweep batch endpoint and verifies the
// sweep contract: one streamed NDJSON line per expanded point, runs_total
// moving by exactly the cold (miss) points, every embedded body
// byte-identical to the same point served via /run, and a repeat sweep that
// is all cache hits and re-simulates nothing.
//
// With -estimate it drives /run?mode=estimate and verifies the estimate
// contract: N analytic answers, runs_total unmoved (an estimate never
// consumes a scheduler slot), estimates_total moving by exactly N, and a
// client-observed p99 latency under the -p99 bound (default 1ms).
//
// Usage:
//
//	pariobench                          # spawn an in-process server
//	pariobench -addr 127.0.0.1:8080     # drive a running daemon
//	pariobench -n 200 -c 16 -hot 0.9
//	pariobench -sweep 'app=fft&procs=1,2,4&opt=both'
//	pariobench -estimate -n 500
//	pariobench -parallel 8 -n 20        # intra-run parallelism contract drive
//	pariobench -cluster 127.0.0.1:7471,127.0.0.1:7472,127.0.0.1:7473 -n 24
//
// With -cluster it drives a running sharded cluster (every listed node) and
// verifies the cluster contract: the same key answers byte-identical bodies
// from every node, the cluster-wide runs_total moves by exactly the number
// of unique cold keys — one simulation per key no matter which node is
// asked — and a repeat pass is all cache with zero new simulations anywhere.
//
// With -parallel N it spawns a sequential server and a -max-parallel N
// server, drives both over the same cold request set, and verifies the
// parallelism contract: byte-identical bodies and cache keys across the
// pair, sim_parallel_* lane counters present in /metrics, every wide grant
// explained by a recorded fallback or a genuinely parallel window, and
// client-observed p99 reported for both.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pario/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pariobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "daemon address; empty spawns an in-process server")
		n         = fs.Int("n", 60, "total requests to fire")
		c         = fs.Int("c", 8, "concurrent clients")
		hot       = fs.Float64("hot", 0.8, "fraction of requests drawn from the small hot set")
		sweep     = fs.String("sweep", "", "sweep spec as /sweep query parameters; runs the sweep drive instead of the mixed stream")
		estimate  = fs.Bool("estimate", false, "drive /run?mode=estimate and verify the estimate contract")
		p99Bound  = fs.Duration("p99", time.Millisecond, "estimate drive: maximum acceptable p99 latency")
		parallel  = fs.Int("parallel", 0, "drive the intra-run parallelism contract: spawn a -max-parallel N server and verify bodies match a sequential one")
		clusterAt = fs.String("cluster", "", "comma-separated node addresses of a running sharded cluster; runs the cluster contract drive")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n < 1 || *c < 1 || *hot < 0 || *hot > 1 {
		fmt.Fprintln(stderr, "pariobench: need -n >= 1, -c >= 1, 0 <= -hot <= 1")
		return 2
	}
	if *parallel > 0 {
		if *addr != "" {
			fmt.Fprintln(stderr, "pariobench: -parallel spawns its own paired servers; drop -addr")
			return 2
		}
		return parallelDrive(*parallel, *n, stdout, stderr)
	}
	if *clusterAt != "" {
		return clusterDrive(*clusterAt, *n, stdout, stderr)
	}

	base := "http://" + *addr
	if *addr == "" {
		srv := serve.New(serve.Options{})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "pariobench: %v\n", err)
			return 1
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + bound.String()
		fmt.Fprintf(stdout, "pariobench: spawned in-process server on %s\n", base)
	}

	if *sweep != "" {
		return sweepDrive(base, *sweep, stdout, stderr)
	}
	if *estimate {
		return estimateDrive(base, *n, *p99Bound, stdout, stderr)
	}

	before, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	// The request mix is a deterministic function of the request index, so
	// reruns against a warm daemon reproduce the same stream. Hot requests
	// rotate through two cheap configurations; cold requests walk distinct
	// scf30 cache ratios (1..89, never the default 90) so each is a new key.
	reqFor := func(i int) serve.Request {
		if (i*13)%100 < int(*hot*100) {
			if i%2 == 0 {
				return serve.Request{App: "scf11", Input: "SMALL"}
			}
			return serve.Request{App: "fft"}
		}
		return serve.Request{App: "scf30", Input: "SMALL", CachedPct: 1 + i%89}
	}

	var (
		mu                          sync.Mutex
		hits, misses, shared, fails int
	)
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcome, err := fire(base, reqFor(i))
				mu.Lock()
				switch {
				case err != nil:
					fails++
					fmt.Fprintf(stderr, "pariobench: request %d: %v\n", i, err)
				case outcome == "hit", outcome == "l2":
					hits++
				case outcome == "miss":
					misses++
				case outcome == "shared":
					shared++
				default:
					fails++
					fmt.Fprintf(stderr, "pariobench: request %d: cache outcome %q\n", i, outcome)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	served := hits + misses + shared
	runs := after.RunsTotal - before.RunsTotal
	fmt.Fprintf(stdout, "pariobench: %d requests in %.2fs (%.1f req/s), %d concurrent clients\n",
		*n, elapsed.Seconds(), float64(*n)/elapsed.Seconds(), *c)
	fmt.Fprintf(stdout, "pariobench: %d hits, %d misses, %d shared, %d failed — hit rate %.1f%%\n",
		hits, misses, shared, fails, 100*float64(hits+shared)/float64(max(served, 1)))
	fmt.Fprintf(stdout, "pariobench: simulations executed: %d (misses observed: %d)\n", runs, misses)

	if fails > 0 {
		fmt.Fprintf(stderr, "pariobench: FAIL: %d requests failed\n", fails)
		return 1
	}
	if runs != int64(misses) {
		fmt.Fprintf(stderr, "pariobench: FAIL: run counter moved by %d but only %d misses were served — the cached path re-simulated\n",
			runs, misses)
		return 1
	}
	fmt.Fprintln(stdout, "pariobench: OK: every simulation is accounted for by a cache miss; cached path never re-simulates")
	return 0
}

// parallelDrive verifies the intra-run parallelism contract: two paired
// in-process servers — one sequential, one with -max-parallel par — are
// driven over the same deterministic request set, and
//
//  1. every response body is byte-identical across the pair (parallelism
//     is execution policy, never result identity)
//  2. cache keys agree, so the parallel grant is no part of the key
//  3. the parallel server's /metrics carries the sim_parallel_* lane
//     counters: the width cap, the wide-run grants, and per-reason
//     fallbacks summing to the wide grants (no run silently parallelizes)
//  4. the parallel server's client-observed p99 is reported beside the
//     sequential one's for the latency comparison
func parallelDrive(par, n int, stdout, stderr io.Writer) int {
	type inst struct {
		base string
		shut func()
	}
	spawn := func(maxPar int) (inst, error) {
		srv := serve.New(serve.Options{MaxParallel: maxPar})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return inst{}, err
		}
		return inst{base: "http://" + bound.String(), shut: func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}}, nil
	}
	seq, err := spawn(1)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	defer seq.shut()
	wide, err := spawn(par)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	defer wide.shut()
	fmt.Fprintf(stdout, "pariobench: paired servers: sequential %s, max-parallel %d %s\n", seq.base, par, wide.base)

	// Distinct cold points: every request simulates on both servers, so the
	// latency comparison is simulation against simulation, not cache echo.
	reqFor := func(i int) serve.Request {
		if i%2 == 0 {
			return serve.Request{App: "scf30", Input: "SMALL", CachedPct: 1 + i%89}
		}
		return serve.Request{App: "scf11", Input: "SMALL", Procs: 1 + i%4}
	}

	drive := func(base string) ([]time.Duration, [][]byte, []string, error) {
		lats := make([]time.Duration, 0, n)
		bodies := make([][]byte, 0, n)
		keys := make([]string, 0, n)
		for i := 0; i < n; i++ {
			body, err := json.Marshal(reqFor(i))
			if err != nil {
				return nil, nil, nil, err
			}
			t0 := time.Now()
			resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, nil, nil, err
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				return nil, nil, nil, fmt.Errorf("request %d: status %d (%v)", i, resp.StatusCode, err)
			}
			lats = append(lats, time.Since(t0))
			bodies = append(bodies, b)
			keys = append(keys, resp.Header.Get("X-Pario-Key"))
		}
		return lats, bodies, keys, nil
	}
	seqLats, seqBodies, seqKeys, err := drive(seq.base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: sequential drive: %v\n", err)
		return 1
	}
	wideLats, wideBodies, wideKeys, err := drive(wide.base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: parallel drive: %v\n", err)
		return 1
	}

	for i := range seqBodies {
		if seqKeys[i] != wideKeys[i] {
			fmt.Fprintf(stderr, "pariobench: FAIL: request %d cache key differs under -max-parallel — parallelism leaked into request identity\n", i)
			return 1
		}
		if !bytes.Equal(seqBodies[i], wideBodies[i]) {
			fmt.Fprintf(stderr, "pariobench: FAIL: request %d body differs between sequential and parallel servers\n", i)
			return 1
		}
	}
	fmt.Fprintf(stdout, "pariobench: all %d bodies byte-identical across the pair\n", n)

	p99 := func(lats []time.Duration) time.Duration {
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		idx := (len(s) * 99) / 100
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	fmt.Fprintf(stdout, "pariobench: run latency p99: sequential %s, max-parallel %d %s\n",
		p99(seqLats), par, p99(wideLats))

	pm, err := fetchParallelMetrics(wide.base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	if pm.SimParallelMax != par {
		fmt.Fprintf(stderr, "pariobench: FAIL: sim_parallel_max = %d, want %d\n", pm.SimParallelMax, par)
		return 1
	}
	if pm.SimParallelWideRunsTotal < 1 {
		fmt.Fprintln(stderr, "pariobench: FAIL: no run was granted a wide lane width")
		return 1
	}
	var fallbacks int64
	for _, v := range pm.SimParallelFallbacks {
		fallbacks += v
	}
	if fallbacks != pm.SimParallelWideRunsTotal {
		fmt.Fprintf(stderr, "pariobench: FAIL: %d wide grants but %d recorded fallbacks — a run's parallelism decision went unexplained\n",
			pm.SimParallelWideRunsTotal, fallbacks)
		return 1
	}
	fmt.Fprintf(stdout, "pariobench: OK: bodies and keys parallelism-invariant; %d wide grants, every one accounted for (%v)\n",
		pm.SimParallelWideRunsTotal, pm.SimParallelFallbacks)
	return 0
}

type parallelMetrics struct {
	SimParallelMax           int              `json:"sim_parallel_max"`
	SimParallelWideRunsTotal int64            `json:"sim_parallel_wide_runs_total"`
	SimParallelFallbacks     map[string]int64 `json:"sim_parallel_fallbacks"`
}

func fetchParallelMetrics(base string) (parallelMetrics, error) {
	var m parallelMetrics
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	return m, err
}

// clusterDrive verifies the sharded-cluster contract against a running
// cluster of the listed nodes:
//
//  1. every node answers byte-identical bodies (and the same cache key) for
//     the same request — ownership and proxying are invisible in the result
//  2. the cluster-wide runs_total moves by exactly the number of unique
//     cold keys driven: one simulation per key, no matter how many nodes
//     were asked — the cluster-wide singleflight-by-construction invariant
//  3. a repeat pass over the same keys is all cache (hit/l2) everywhere and
//     moves no run counter on any node
func clusterDrive(addrs string, n int, stdout, stderr io.Writer) int {
	var bases []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		bases = append(bases, strings.TrimSuffix(a, "/"))
	}
	if len(bases) < 2 {
		fmt.Fprintln(stderr, "pariobench: -cluster needs at least 2 node addresses")
		return 2
	}

	sumRuns := func() (int64, error) {
		var total int64
		for _, b := range bases {
			m, err := fetchMetrics(b)
			if err != nil {
				return 0, fmt.Errorf("%s: %v", b, err)
			}
			if !m.ClusterEnabled {
				return 0, fmt.Errorf("%s is not in cluster mode", b)
			}
			total += m.RunsTotal
		}
		return total, nil
	}
	before, err := sumRuns()
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	// Distinct cold keys: each i names a different canonical request.
	reqFor := func(i int) serve.Request {
		return serve.Request{App: "scf30", Input: "SMALL", CachedPct: 1 + i%89, Procs: 4 * (1 + i/89)}
	}

	type answer struct {
		body  []byte
		cache string
		key   string
		owner string
	}
	ask := func(base string, req serve.Request) (answer, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return answer{}, err
		}
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return answer{}, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return answer{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return answer{}, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
		}
		return answer{
			body:  b,
			cache: resp.Header.Get("X-Pario-Cache"),
			key:   resp.Header.Get("X-Pario-Key"),
			owner: resp.Header.Get("X-Pario-Owner"),
		}, nil
	}

	// Cold pass: every key is asked of every node, entry node rotating so
	// each node fronts some keys. Every answer for one key must agree
	// byte-for-byte regardless of which node was asked.
	ownerKeys := make(map[string]int)
	start := time.Now()
	for i := 0; i < n; i++ {
		req := reqFor(i)
		var first answer
		for j := 0; j < len(bases); j++ {
			base := bases[(i+j)%len(bases)]
			a, err := ask(base, req)
			if err != nil {
				fmt.Fprintf(stderr, "pariobench: key %d via %s: %v\n", i, base, err)
				return 1
			}
			if a.owner == "" {
				fmt.Fprintf(stderr, "pariobench: FAIL: %s answered without X-Pario-Owner — not proxying?\n", base)
				return 1
			}
			if j == 0 {
				first = a
				ownerKeys[a.owner]++
				continue
			}
			if !bytes.Equal(a.body, first.body) {
				fmt.Fprintf(stderr, "pariobench: FAIL: key %d: body from %s differs from first answer\n", i, base)
				return 1
			}
			if a.key != first.key || a.owner != first.owner {
				fmt.Fprintf(stderr, "pariobench: FAIL: key %d: nodes disagree on key/owner (%s/%s vs %s/%s)\n",
					i, a.key, a.owner, first.key, first.owner)
				return 1
			}
		}
	}
	elapsed := time.Since(start)

	afterCold, err := sumRuns()
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pariobench: %d keys x %d nodes in %.2fs; owner spread: %v\n",
		n, len(bases), elapsed.Seconds(), ownerKeys)
	if runs := afterCold - before; runs != int64(n) {
		fmt.Fprintf(stderr, "pariobench: FAIL: cluster-wide runs_total moved by %d for %d unique cold keys — a key simulated on more than one node\n",
			runs, n)
		return 1
	}

	// Repeat pass: all cache, everywhere, zero new simulations.
	for i := 0; i < n; i++ {
		req := reqFor(i)
		for _, base := range bases {
			a, err := ask(base, req)
			if err != nil {
				fmt.Fprintf(stderr, "pariobench: repeat key %d via %s: %v\n", i, base, err)
				return 1
			}
			if a.cache != "hit" && a.cache != "l2" {
				fmt.Fprintf(stderr, "pariobench: FAIL: repeat key %d via %s was %q, want hit or l2\n", i, base, a.cache)
				return 1
			}
		}
	}
	final, err := sumRuns()
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	if final != afterCold {
		fmt.Fprintf(stderr, "pariobench: FAIL: repeat pass re-simulated (%d -> %d)\n", afterCold, final)
		return 1
	}
	fmt.Fprintf(stdout, "pariobench: OK: bodies byte-identical from every node, %d runs for %d keys, repeat pass all-cache\n", n, n)
	return 0
}

// fire posts one run request and returns its X-Pario-Cache outcome,
// retrying briefly on 429 so backpressure sheds load without failing the
// drive.
func fire(base string, req serve.Request) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return resp.Header.Get("X-Pario-Cache"), nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 50:
			time.Sleep(100 * time.Millisecond)
		default:
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
	}
}

// sweepDrive fires one /sweep, then checks the batch contract against the
// daemon's own counters and a point-by-point replay through /run:
//
//  1. streamed lines == expanded points (header, summary, and the
//     sweep_points_total metric delta all agree)
//  2. runs_total moved by exactly the cold (miss) points
//  3. every line's embedded body is byte-identical to /run on the request
//     that body carries
//  4. a repeat sweep is all cache hits and re-simulates nothing
func sweepDrive(base, spec string, stdout, stderr io.Writer) int {
	before, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	start := time.Now()
	lines, sum, hdrPoints, err := fireSweep(base, spec)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: sweep: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	after, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	var hits, misses, shared, failed int
	for _, ln := range lines {
		switch {
		case ln.Error != "":
			failed++
			fmt.Fprintf(stderr, "pariobench: point %d failed (%s): %s\n", ln.Point, ln.Class, ln.Error)
		case ln.Cache == "hit":
			hits++
		case ln.Cache == "shared":
			shared++
		default:
			misses++
		}
	}
	fmt.Fprintf(stdout, "pariobench: sweep %q: %d points in %.2fs (%d cold, %d hit, %d shared, %d skipped, %d deduped)\n",
		spec, len(lines), elapsed.Seconds(), misses, hits, shared, sum.Skipped, sum.Deduped)
	if failed > 0 {
		fmt.Fprintf(stderr, "pariobench: FAIL: %d sweep points failed\n", failed)
		return 1
	}
	pointsDelta := after.SweepPointsTotal - before.SweepPointsTotal
	if len(lines) != hdrPoints || sum.Points != hdrPoints || pointsDelta != int64(hdrPoints) {
		fmt.Fprintf(stderr, "pariobench: FAIL: point accounting disagrees: %d lines, %d header, %d summary, %d metric delta\n",
			len(lines), hdrPoints, sum.Points, pointsDelta)
		return 1
	}
	if runs := after.RunsTotal - before.RunsTotal; runs != int64(misses) {
		fmt.Fprintf(stderr, "pariobench: FAIL: run counter moved by %d but the sweep served %d cold points\n", runs, misses)
		return 1
	}

	// Replay every point through /run: the interactive path must return the
	// exact bytes the sweep streamed (all from cache now — the sweep seeded it).
	for _, ln := range lines {
		var res struct {
			Request serve.Request `json:"request"`
		}
		if err := json.Unmarshal([]byte(ln.Body), &res); err != nil {
			fmt.Fprintf(stderr, "pariobench: FAIL: point %d body does not decode: %v\n", ln.Point, err)
			return 1
		}
		runBody, err := fireBody(base, res.Request)
		if err != nil {
			fmt.Fprintf(stderr, "pariobench: FAIL: point %d via /run: %v\n", ln.Point, err)
			return 1
		}
		if !bytes.Equal([]byte(ln.Body), runBody) {
			fmt.Fprintf(stderr, "pariobench: FAIL: point %d: sweep body differs from /run body\n", ln.Point)
			return 1
		}
	}
	fmt.Fprintf(stdout, "pariobench: all %d bodies byte-identical via /run\n", len(lines))

	// The repeat sweep must be pure cache: every point a hit, zero new runs.
	lines2, sum2, _, err := fireSweep(base, spec)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: repeat sweep: %v\n", err)
		return 1
	}
	final, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}
	for _, ln := range lines2 {
		if ln.Cache != "hit" {
			fmt.Fprintf(stderr, "pariobench: FAIL: repeat sweep point %d was %q, want hit\n", ln.Point, ln.Cache)
			return 1
		}
	}
	if sum2.CacheHits != len(lines2) || final.RunsTotal != after.RunsTotal {
		fmt.Fprintf(stderr, "pariobench: FAIL: repeat sweep re-simulated (hits %d/%d, runs %d -> %d)\n",
			sum2.CacheHits, len(lines2), after.RunsTotal, final.RunsTotal)
		return 1
	}
	fmt.Fprintln(stdout, "pariobench: OK: points == lines == metrics, runs == cold points, repeat sweep all-cache")
	return 0
}

// estimateDrive fires n sequential /run?mode=estimate requests over a
// deterministic mix of the request space and checks the estimate contract:
// every answer 200, runs_total unmoved (the analytic path never consumes a
// scheduler slot), estimates_total moved by exactly n, and the
// client-observed p99 latency under bound.
func estimateDrive(base string, n int, bound time.Duration, stdout, stderr io.Writer) int {
	before, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	// A deterministic walk across apps and parameters: repeats make cache
	// hits, the rotating scf30 ratio makes cold closed-form evaluations.
	reqFor := func(i int) serve.Request {
		switch i % 6 {
		case 0:
			return serve.Request{App: "scf11", Input: "SMALL"}
		case 1:
			return serve.Request{App: "scf11", Input: "LARGE", Version: "prefetch", Procs: 16}
		case 2:
			return serve.Request{App: "fft", Procs: 8, Opt: true}
		case 3:
			return serve.Request{App: "btio", Procs: 16, Opt: i%2 == 0}
		case 4:
			return serve.Request{App: "ast", Procs: 16}
		default:
			return serve.Request{App: "scf30", CachedPct: 1 + i%89}
		}
	}

	lats := make([]time.Duration, 0, n)
	var hits, misses int
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		outcome, err := fireMode(base, reqFor(i), "estimate")
		lat := time.Since(t0)
		if err != nil {
			fmt.Fprintf(stderr, "pariobench: estimate %d: %v\n", i, err)
			return 1
		}
		lats = append(lats, lat)
		if outcome == "hit" {
			hits++
		} else {
			misses++
		}
	}
	elapsed := time.Since(start)

	after, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	idx := (len(lats) * 99) / 100
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	p99 := lats[idx]
	fmt.Fprintf(stdout, "pariobench: %d estimates in %.3fs (%.0f est/s), %d cold, %d hits\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds(), misses, hits)
	fmt.Fprintf(stdout, "pariobench: estimate latency p50 %s, p99 %s\n", p50, p99)

	if runs := after.RunsTotal - before.RunsTotal; runs != 0 {
		fmt.Fprintf(stderr, "pariobench: FAIL: estimate drive moved runs_total by %d — an estimate consumed a scheduler slot\n", runs)
		return 1
	}
	if got := after.EstimatesTotal - before.EstimatesTotal; got != int64(n) {
		fmt.Fprintf(stderr, "pariobench: FAIL: estimates_total moved by %d, want %d\n", got, n)
		return 1
	}
	if p99 > bound {
		fmt.Fprintf(stderr, "pariobench: FAIL: estimate p99 latency %s exceeds %s\n", p99, bound)
		return 1
	}
	fmt.Fprintln(stdout, "pariobench: OK: estimates never simulate, runs_total unmoved, p99 under bound")
	return 0
}

// fireMode posts one run request with a ?mode= selector and returns its
// X-Pario-Cache outcome.
func fireMode(base string, req serve.Request, mode string) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/run?mode="+mode, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Pario-Cache"), nil
}

// fireSweep streams one /sweep and returns its point lines, summary, and
// the X-Pario-Sweep-Points header.
func fireSweep(base, spec string) ([]serve.SweepLine, serve.SweepSummary, int, error) {
	var sum serve.SweepSummary
	resp, err := http.Get(base + "/sweep?" + spec)
	if err != nil {
		return nil, sum, 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, sum, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, sum, 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	hdrPoints, err := strconv.Atoi(resp.Header.Get("X-Pario-Sweep-Points"))
	if err != nil {
		return nil, sum, 0, fmt.Errorf("X-Pario-Sweep-Points %q: %v", resp.Header.Get("X-Pario-Sweep-Points"), err)
	}
	rows := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(rows) == 0 {
		return nil, sum, 0, fmt.Errorf("empty stream")
	}
	if err := json.Unmarshal([]byte(rows[len(rows)-1]), &sum); err != nil || !sum.Done {
		return nil, sum, 0, fmt.Errorf("stream did not end with a done summary: %q", rows[len(rows)-1])
	}
	var lines []serve.SweepLine
	for _, row := range rows[:len(rows)-1] {
		var ln serve.SweepLine
		if err := json.Unmarshal([]byte(row), &ln); err != nil {
			return nil, sum, 0, fmt.Errorf("stream line %q: %v", row, err)
		}
		lines = append(lines, ln)
	}
	return lines, sum, hdrPoints, nil
}

// fireBody posts one run request and returns the full response body.
func fireBody(base string, req serve.Request) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return b, nil
}

type metrics struct {
	RunsTotal        int64 `json:"runs_total"`
	CacheHits        int64 `json:"cache_hits"`
	SweepPointsTotal int64 `json:"sweep_points_total"`
	EstimatesTotal   int64 `json:"estimates_total"`
	ClusterEnabled   bool  `json:"cluster_enabled"`
}

func fetchMetrics(base string) (metrics, error) {
	var m metrics
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	return m, err
}
