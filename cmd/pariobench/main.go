// Command pariobench is the load driver for pariod: it fires a mixed
// stream of hot (repeated) and cold (distinct) run requests at a daemon,
// prints throughput and cache hit-rate, and verifies from the daemon's
// run-counter metric — not timing — that the cached path never
// re-simulates: the number of simulations executed must equal exactly the
// number of cache misses observed on the wire.
//
// Usage:
//
//	pariobench                          # spawn an in-process server
//	pariobench -addr 127.0.0.1:8080     # drive a running daemon
//	pariobench -n 200 -c 16 -hot 0.9
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"pario/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pariobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr = fs.String("addr", "", "daemon address; empty spawns an in-process server")
		n    = fs.Int("n", 60, "total requests to fire")
		c    = fs.Int("c", 8, "concurrent clients")
		hot  = fs.Float64("hot", 0.8, "fraction of requests drawn from the small hot set")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n < 1 || *c < 1 || *hot < 0 || *hot > 1 {
		fmt.Fprintln(stderr, "pariobench: need -n >= 1, -c >= 1, 0 <= -hot <= 1")
		return 2
	}

	base := "http://" + *addr
	if *addr == "" {
		srv := serve.New(serve.Options{})
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "pariobench: %v\n", err)
			return 1
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + bound.String()
		fmt.Fprintf(stdout, "pariobench: spawned in-process server on %s\n", base)
	}

	before, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	// The request mix is a deterministic function of the request index, so
	// reruns against a warm daemon reproduce the same stream. Hot requests
	// rotate through two cheap configurations; cold requests walk distinct
	// scf30 cache ratios (1..89, never the default 90) so each is a new key.
	reqFor := func(i int) serve.Request {
		if (i*13)%100 < int(*hot*100) {
			if i%2 == 0 {
				return serve.Request{App: "scf11", Input: "SMALL"}
			}
			return serve.Request{App: "fft"}
		}
		return serve.Request{App: "scf30", Input: "SMALL", CachedPct: 1 + i%89}
	}

	var (
		mu                          sync.Mutex
		hits, misses, shared, fails int
	)
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcome, err := fire(base, reqFor(i))
				mu.Lock()
				switch {
				case err != nil:
					fails++
					fmt.Fprintf(stderr, "pariobench: request %d: %v\n", i, err)
				case outcome == "hit":
					hits++
				case outcome == "miss":
					misses++
				case outcome == "shared":
					shared++
				default:
					fails++
					fmt.Fprintf(stderr, "pariobench: request %d: cache outcome %q\n", i, outcome)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchMetrics(base)
	if err != nil {
		fmt.Fprintf(stderr, "pariobench: %v\n", err)
		return 1
	}

	served := hits + misses + shared
	runs := after.RunsTotal - before.RunsTotal
	fmt.Fprintf(stdout, "pariobench: %d requests in %.2fs (%.1f req/s), %d concurrent clients\n",
		*n, elapsed.Seconds(), float64(*n)/elapsed.Seconds(), *c)
	fmt.Fprintf(stdout, "pariobench: %d hits, %d misses, %d shared, %d failed — hit rate %.1f%%\n",
		hits, misses, shared, fails, 100*float64(hits+shared)/float64(max(served, 1)))
	fmt.Fprintf(stdout, "pariobench: simulations executed: %d (misses observed: %d)\n", runs, misses)

	if fails > 0 {
		fmt.Fprintf(stderr, "pariobench: FAIL: %d requests failed\n", fails)
		return 1
	}
	if runs != int64(misses) {
		fmt.Fprintf(stderr, "pariobench: FAIL: run counter moved by %d but only %d misses were served — the cached path re-simulated\n",
			runs, misses)
		return 1
	}
	fmt.Fprintln(stdout, "pariobench: OK: every simulation is accounted for by a cache miss; cached path never re-simulates")
	return 0
}

// fire posts one run request and returns its X-Pario-Cache outcome,
// retrying briefly on 429 so backpressure sheds load without failing the
// drive.
func fire(base string, req serve.Request) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return resp.Header.Get("X-Pario-Cache"), nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 50:
			time.Sleep(100 * time.Millisecond)
		default:
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
	}
}

type metrics struct {
	RunsTotal int64 `json:"runs_total"`
	CacheHits int64 `json:"cache_hits"`
}

func fetchMetrics(base string) (metrics, error) {
	var m metrics
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	return m, err
}
