#!/bin/sh
# sweepsmoke.sh — end-to-end smoke of the /sweep batch path.
#
# Usage:
#   scripts/sweepsmoke.sh
#
# Builds pariod and pariobench, starts the daemon on an ephemeral port, and
# walks the sweep contract over a paper-shaped grid:
#   1. GET /sweep streams one NDJSON line per expanded point plus a done
#      summary; the X-Pario-Sweep-Points header agrees with the line count
#   2. invalid partitions in a range (ionodes=1..16 on the large Paragon)
#      are skipped and counted, not errors
#   3. pariobench -sweep holds the full contract: runs_total delta == cold
#      points, bodies byte-identical via /run, repeat sweep all-cache
#   4. interactive /run during the sweep aftermath still answers from the
#      seeded cache (the sweep warmed it)
#   5. per-lane /metrics gauges exist and the sweep counters moved
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "sweepsmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/pariobench" ./cmd/pariobench

"$tmp/pariod" -addr 127.0.0.1:0 -workers 4 -batch-queue 32 >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "sweepsmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "sweepsmoke: FAIL: daemon never bound"; exit 1; }
echo "sweepsmoke: daemon up at $base"

metric() {
    curl -fsS "$base/metrics" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p"
}

# 1-2. A ranged sweep: scf11 over ionodes=1..16 keeps only the {12,16}
# partitions the large Paragon offers and skips the other 14 combinations.
curl -fsS -D "$tmp/h1" -o "$tmp/s1" "$base/sweep?app=scf11&input=SMALL&ionodes=1..16"
points=$(sed -n 's/^[Xx]-[Pp]ario-[Ss]weep-[Pp]oints: *\([0-9]*\).*/\1/p' "$tmp/h1")
skipped=$(sed -n 's/^[Xx]-[Pp]ario-[Ss]weep-[Ss]kipped: *\([0-9]*\).*/\1/p' "$tmp/h1")
[ "$points" = 2 ] || { echo "sweepsmoke: FAIL: expanded $points points, want 2"; cat "$tmp/h1"; exit 1; }
[ "$skipped" = 14 ] || { echo "sweepsmoke: FAIL: skipped $skipped combinations, want 14"; exit 1; }
nlines=$(wc -l <"$tmp/s1")
[ "$nlines" = 3 ] || { echo "sweepsmoke: FAIL: stream has $nlines lines, want 2 points + summary"; cat "$tmp/s1"; exit 1; }
grep -q '"done":true' "$tmp/s1" || { echo "sweepsmoke: FAIL: no done summary"; cat "$tmp/s1"; exit 1; }
echo "sweepsmoke: ranged sweep expanded to $points valid partitions ($skipped skipped)"

# 3. The bench sweep drive asserts the cluster invariants end to end.
"$tmp/pariobench" -addr "${base#http://}" -sweep 'app=fft&procs=1,2,4&opt=both'

# 4. The sweep seeded the cache: the same point via /run is a hit.
curl -fsS -D "$tmp/h2" -o /dev/null "$base/run?app=fft&procs=2&opt=true"
grep -qi '^x-pario-cache: hit' "$tmp/h2" || { echo "sweepsmoke: FAIL: /run after sweep missed the seeded cache"; cat "$tmp/h2"; exit 1; }
echo "sweepsmoke: sweep-seeded cache serves interactive /run as a hit"

# 5. Per-lane gauges and sweep counters are live.
sweeps=$(metric sweeps_total)
swpoints=$(metric sweep_points_total)
[ "$sweeps" -ge 3 ] || { echo "sweepsmoke: FAIL: sweeps_total=$sweeps, want >= 3"; exit 1; }
[ "$swpoints" -ge 14 ] || { echo "sweepsmoke: FAIL: sweep_points_total=$swpoints, want >= 14"; exit 1; }
for g in batch_queue_depth batch_in_flight queue_depth in_flight; do
    v=$(metric "$g")
    [ "$v" = 0 ] || { echo "sweepsmoke: FAIL: idle gauge $g=$v, want 0"; exit 1; }
done
echo "sweepsmoke: lane gauges idle, sweeps_total=$sweeps sweep_points_total=$swpoints"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "sweepsmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
grep -q 'pariod: drained' "$tmp/pariod.log" || { echo "sweepsmoke: FAIL: no drain confirmation"; cat "$tmp/pariod.log"; exit 1; }
echo "sweepsmoke: graceful drain confirmed"
echo "sweepsmoke: OK"
