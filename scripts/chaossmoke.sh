#!/bin/sh
# chaossmoke.sh — end-to-end smoke of pariod's degraded-mode surface.
#
# Usage:
#   scripts/chaossmoke.sh
#
# Builds pariod, starts it on an ephemeral port, then walks the fault
# contract the load smoke leaves untouched:
#   1. a healthy run fills the cache as usual
#   2. a degraded (but survivable) run is a distinct cache entry: its own
#      key, its own miss->hit cycle, a body that differs from the healthy one
#   3. a permanent-outage run answers a structured 500 carrying the error
#      taxonomy class (disk_failed), with no X-Pario-Cache header: failures
#      are never cached
#   4. the healthy entry is still served as a byte-identical hit afterwards,
#      and runs_total shows the failed attempts actually simulated
#   5. /metrics breaks the failures down by class in error_classes
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "chaossmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod

"$tmp/pariod" -addr 127.0.0.1:0 >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "chaossmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "chaossmoke: FAIL: daemon never bound"; exit 1; }
echo "chaossmoke: daemon up at $base"

runs() { curl -fsS "$base/metrics" | sed -n 's/.*"runs_total": *\([0-9]*\).*/\1/p'; }

# 1. Healthy baseline.
healthy='{"app":"fft","procs":4}'
curl -fsS -D "$tmp/hh" -o "$tmp/bh" -H 'Content-Type: application/json' -d "$healthy" "$base/run"
grep -qi '^x-pario-cache: miss' "$tmp/hh" || { echo "chaossmoke: FAIL: healthy cold run was not a miss"; exit 1; }
healthy_key=$(sed -n 's/^[Xx]-[Pp]ario-[Kk]ey: *//p' "$tmp/hh" | tr -d '\r')

# 2. Survivable degradation: separate cache entry, separate key.
degraded='{"app":"fft","procs":4,"faults":"disk:degrade=4@t=0;retry=2"}'
curl -fsS -D "$tmp/hd1" -o "$tmp/bd1" -H 'Content-Type: application/json' -d "$degraded" "$base/run"
grep -qi '^x-pario-cache: miss' "$tmp/hd1" || { echo "chaossmoke: FAIL: degraded cold run was not a miss"; exit 1; }
degraded_key=$(sed -n 's/^[Xx]-[Pp]ario-[Kk]ey: *//p' "$tmp/hd1" | tr -d '\r')
[ "$degraded_key" != "$healthy_key" ] || { echo "chaossmoke: FAIL: degraded request shares the healthy cache key"; exit 1; }
cmp -s "$tmp/bh" "$tmp/bd1" && { echo "chaossmoke: FAIL: degraded body identical to healthy body"; exit 1; }
curl -fsS -D "$tmp/hd2" -o "$tmp/bd2" -H 'Content-Type: application/json' -d "$degraded" "$base/run"
grep -qi '^x-pario-cache: hit' "$tmp/hd2" || { echo "chaossmoke: FAIL: degraded rerun was not a hit"; exit 1; }
cmp -s "$tmp/bd1" "$tmp/bd2" || { echo "chaossmoke: FAIL: degraded rerun body differs"; exit 1; }
echo "chaossmoke: degraded run is its own deterministic cache entry"

# 3. Permanent outage: structured 500, taxonomy class, never cached.
outage='{"app":"fft","procs":4,"faults":"disk:0:fail@t=1ms;retry=1;backoff=1ms"}'
runs_before=$(runs)
for i in 1 2; do
    code=$(curl -sS -D "$tmp/hf$i" -o "$tmp/bf$i" -w '%{http_code}' \
        -H 'Content-Type: application/json' -d "$outage" "$base/run")
    [ "$code" = 500 ] || { echo "chaossmoke: FAIL: outage run $i answered $code, want 500"; cat "$tmp/bf$i"; exit 1; }
    grep -qi '^x-pario-cache:' "$tmp/hf$i" && { echo "chaossmoke: FAIL: outage run $i served from cache"; exit 1; }
    grep -q '"class":"disk_failed"' "$tmp/bf$i" || { echo "chaossmoke: FAIL: outage run $i body lacks taxonomy class"; cat "$tmp/bf$i"; exit 1; }
done
runs_after=$(runs)
[ "$runs_after" = $((runs_before + 2)) ] || { echo "chaossmoke: FAIL: failed runs not re-attempted ($runs_before -> $runs_after)"; exit 1; }
echo "chaossmoke: outage answers structured 500 (disk_failed), never cached"

# 4. Healthy entry unharmed by the chaos.
curl -fsS -D "$tmp/hh2" -o "$tmp/bh2" -H 'Content-Type: application/json' -d "$healthy" "$base/run"
grep -qi '^x-pario-cache: hit' "$tmp/hh2" || { echo "chaossmoke: FAIL: healthy rerun was not a hit"; exit 1; }
cmp -s "$tmp/bh" "$tmp/bh2" || { echo "chaossmoke: FAIL: healthy body changed after faulted runs"; exit 1; }

# 5. /metrics carries the class breakdown.
curl -fsS "$base/metrics" >"$tmp/metrics"
grep -q '"disk_failed": *2' "$tmp/metrics" || {
    echo "chaossmoke: FAIL: /metrics error_classes lacks disk_failed: 2"; cat "$tmp/metrics"; exit 1; }
echo "chaossmoke: healthy cache entry intact, error taxonomy in /metrics"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "chaossmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
echo "chaossmoke: OK"
