#!/bin/sh
# tracesmoke.sh — end-to-end smoke of the trace round-trip: capture a real
# application's I/O log, serve it through pariod by content hash, and prove
# replays are first-class cached citizens.
#
# Usage:
#   scripts/tracesmoke.sh
#
# Walks the trace contract:
#   1. iotrace -capture writes a replayable trace of a real fft run, and
#      iogen -emit-trace / -adversary produce valid trace files whose
#      printed hash matches what the server registers
#   2. POST /trace registers the capture and answers its content hash;
#      GET /trace serves back the byte-identical canonical text encoding
#   3. /run {"app":"trace","trace":<hash>} replays cold exactly once (miss,
#      runs_total +1) and the repeat is a cache hit with runs_total pinned —
#      a served trace never re-simulates
#   4. iosim -trace on the same file produces the byte-identical JSON body
#      the daemon serves for the uploaded copy
#   5. an unknown hash answers a structured 404 (trace_unknown) without
#      consuming a run; a trace sweep covers iface x opt in one request
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "tracesmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/iotrace" ./cmd/iotrace
go build -o "$tmp/iogen" ./cmd/iogen
go build -o "$tmp/iosim" ./cmd/iosim

# 1. Capture a real run and generate synthetic/adversarial traces.
"$tmp/iotrace" -app fft -procs 4 -capture "$tmp/fft.ptrt" >"$tmp/iotrace.out"
cap_hash=$(sed -n 's/^trace:\([0-9a-f]\{64\}\)$/\1/p' "$tmp/iotrace.out")
[ -n "$cap_hash" ] || { echo "tracesmoke: FAIL: iotrace printed no capture hash"; cat "$tmp/iotrace.out"; exit 1; }
"$tmp/iogen" -pattern hotspot -total 2M -req 16K -writefrac 0.25 -procs 4 -emit-trace "$tmp/hot.ptrt" >/dev/null
"$tmp/iogen" -adversary appendstorm -procs 4 -events 64 -emit-trace "$tmp/storm.ptrt" >"$tmp/iogen.out"
storm_hash=$(sed -n 's/^trace:\([0-9a-f]\{64\}\)$/\1/p' "$tmp/iogen.out")
[ -n "$storm_hash" ] || { echo "tracesmoke: FAIL: iogen printed no trace hash"; exit 1; }
echo "tracesmoke: captured fft ($cap_hash) and generated adversary traces"

"$tmp/pariod" -addr 127.0.0.1:0 -workers 4 >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "tracesmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "tracesmoke: FAIL: daemon never bound"; exit 1; }
echo "tracesmoke: daemon up at $base"

metric() {
    curl -fsS "$base/metrics" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p"
}

# 2. Upload: the server registers the capture under the hash the CLI printed,
# and serves the canonical text encoding back byte-identical.
curl -fsS -X POST --data-binary @"$tmp/fft.ptrt" "$base/trace" >"$tmp/up.json"
grep -q "\"trace\":\"$cap_hash\"" "$tmp/up.json" || { echo "tracesmoke: FAIL: upload hash mismatch"; cat "$tmp/up.json"; exit 1; }
curl -fsS "$base/trace?trace=$cap_hash" -o "$tmp/fft.echo"
cmp -s "$tmp/fft.ptrt" "$tmp/fft.echo" || { echo "tracesmoke: FAIL: GET /trace is not byte-identical to the upload"; exit 1; }
echo "tracesmoke: upload registered as trace:$cap_hash, download byte-identical"

# 3. Replay by hash: cold exactly once, repeat all cache hits, runs pinned.
curl -fsS -D "$tmp/h1" -o "$tmp/r1" -X POST -H 'Content-Type: application/json' \
    -d "{\"app\":\"trace\",\"trace\":\"$cap_hash\",\"version\":\"passion\",\"opt\":true}" "$base/run"
grep -qi '^x-pario-cache: miss' "$tmp/h1" || { echo "tracesmoke: FAIL: cold replay not a miss"; cat "$tmp/h1"; exit 1; }
[ "$(metric runs_total)" = 1 ] || { echo "tracesmoke: FAIL: cold replay did not simulate exactly once"; exit 1; }
curl -fsS -D "$tmp/h2" -o "$tmp/r2" -X POST -H 'Content-Type: application/json' \
    -d "{\"app\":\"trace\",\"trace\":\"$cap_hash\",\"version\":\"passion\",\"opt\":true}" "$base/run"
grep -qi '^x-pario-cache: hit' "$tmp/h2" || { echo "tracesmoke: FAIL: repeat replay not a hit"; cat "$tmp/h2"; exit 1; }
cmp -s "$tmp/r1" "$tmp/r2" || { echo "tracesmoke: FAIL: replay bodies differ"; exit 1; }
[ "$(metric runs_total)" = 1 ] || { echo "tracesmoke: FAIL: repeat replay re-simulated"; exit 1; }
echo "tracesmoke: replay cold miss then hit, runs_total pinned at 1"

# 4. CLI/server parity: iosim -trace answers the byte-identical JSON body.
"$tmp/iosim" -trace "$tmp/fft.ptrt" -version passion -opt -json >"$tmp/cli.json"
cmp -s "$tmp/cli.json" "$tmp/r1" || { echo "tracesmoke: FAIL: iosim -trace body differs from the daemon's"; exit 1; }
echo "tracesmoke: iosim -trace and pariod bodies byte-identical"

# 5. Unknown hash is a structured 404 that consumes no run; a sweep covers
# the iface x opt grid over one uploaded trace.
ghost=$(printf 'a%.0s' $(seq 1 64))
status=$(curl -sS -o "$tmp/e404" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d "{\"app\":\"trace\",\"trace\":\"$ghost\"}" "$base/run")
[ "$status" = 404 ] || { echo "tracesmoke: FAIL: unknown trace answered $status, want 404"; cat "$tmp/e404"; exit 1; }
grep -q '"class":"trace_unknown"' "$tmp/e404" || { echo "tracesmoke: FAIL: 404 body lacks trace_unknown class"; cat "$tmp/e404"; exit 1; }
[ "$(metric runs_total)" = 1 ] || { echo "tracesmoke: FAIL: unknown trace consumed a run"; exit 1; }

curl -fsS -X POST --data-binary @"$tmp/storm.ptrt" "$base/trace" >/dev/null
curl -fsS "$base/sweep?app=trace&trace=$storm_hash&version=fortran,passion,native&opt=both" >"$tmp/sweep.out"
nlines=$(wc -l <"$tmp/sweep.out")
[ "$nlines" = 7 ] || { echo "tracesmoke: FAIL: trace sweep streamed $nlines lines, want 6 points + summary"; cat "$tmp/sweep.out"; exit 1; }
grep -q '"done":true' "$tmp/sweep.out" || { echo "tracesmoke: FAIL: no sweep summary"; exit 1; }
echo "tracesmoke: unknown hash 404s cleanly; adversary sweep covered iface x opt"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "tracesmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
echo "tracesmoke: OK"
