#!/bin/sh
# bench.sh — run the repo's benchmark suites and emit a JSON summary.
#
# Usage:
#   scripts/bench.sh                      # print JSON to stdout
#   scripts/bench.sh -o out.json          # write JSON to a file
#   scripts/bench.sh -baseline old.json   # wrap as {before: old, after: new}
#   scripts/bench.sh -gate old.json       # fail on >10% ns/op regression
#   scripts/bench.sh -gate old.json -tol 15
#
# Runs the root artifact benchmarks (BenchmarkFig1, BenchmarkTable2, ...)
# and the internal/sim kernel microbenchmarks with -short -benchmem so the
# whole suite finishes in seconds. BENCHTIME overrides -benchtime (default
# 1x — one iteration per benchmark, a smoke run; use e.g. BENCHTIME=2x or
# a duration like 200ms for numbers stable enough to compare). BENCHCOUNT
# overrides -count (default 1); with several repetitions the summary keeps
# the per-benchmark MINIMUM ns/op — the standard way to cancel scheduler
# noise, since a benchmark can only be slowed down by interference, never
# sped up.
#
# -gate is the CI regression gate: every benchmark present in both the
# committed baseline and the fresh run is compared on ns/op. Because the
# baseline was measured on a different machine, raw ratios are normalized
# by the median after/before ratio across the whole suite (the machine's
# overall speed factor); a benchmark whose normalized ratio exceeds the
# tolerance (default 10%) regressed relative to its peers and fails the
# gate. Benchmarks whose baseline ns/op is under 1µs skip the timing
# comparison — at nanosecond scale the reading is mostly CPU frequency
# and cache state, not simulator work. allocs/op, which is exact and
# machine-independent, is gated unnormalized at the same tolerance for
# every benchmark, floor included.
set -eu

cd "$(dirname "$0")/.."

out=""
baseline=""
gate=""
tol=10
while [ $# -gt 0 ]; do
    case "$1" in
    -o)        out="$2"; shift 2 ;;
    -baseline) baseline="$2"; shift 2 ;;
    -gate)     gate="$2"; shift 2 ;;
    -tol)      tol="$2"; shift 2 ;;
    *) echo "usage: $0 [-o out.json] [-baseline before.json] [-gate before.json [-tol pct]]" >&2; exit 2 ;;
    esac
done

benchtime="${BENCHTIME:-1x}"
benchcount="${BENCHCOUNT:-1}"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench=. -short -benchtime="$benchtime" -count="$benchcount" \
    -benchmem . ./internal/sim/ | tee "$raw" >&2

# Turn `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op` lines into
# JSON, keeping the fastest repetition of each benchmark.
json="$(awk -v commit="$commit" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns  = $i
        if ($(i+1) == "B/op")      bop = $i
        if ($(i+1) == "allocs/op") aop = $i
    }
    if (ns == "") next
    if (!(name in best)) order[n++] = name
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; bestb[name] = bop; besta[name] = aop
    }
}
END {
    for (i = 0; i < n; i++) {
        name = order[i]
        if (i) body = body ","
        body = body sprintf("\n    \"%s\": {\"ns_op\": %s", name, best[name])
        if (bestb[name] != "") body = body sprintf(", \"b_op\": %s", bestb[name])
        if (besta[name] != "") body = body sprintf(", \"allocs_op\": %s", besta[name])
        body = body "}"
    }
    printf "{\n  \"commit\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {%s\n  }\n}\n",
        commit, benchtime, body
}' "$raw")"

if [ -n "$gate" ]; then
    printf '%s\n' "$json" >"$raw"
    # Benchmark lines in our JSON are one per line:
    #     "Name": {"ns_op": N, "b_op": B, "allocs_op": A}
    # so a sed capture turns each file into  name ns_op allocs_op  rows.
    base_t="$(mktemp)"; new_t="$(mktemp)"
    sed -n 's/^ *"\([^"]*\)": {"ns_op": \([0-9.e+]*\)\(, "b_op": [0-9]*, "allocs_op": \([0-9]*\)\)\{0,1\}.*/\1 \2 \4/p' "$gate" >"$base_t"
    sed -n 's/^ *"\([^"]*\)": {"ns_op": \([0-9.e+]*\)\(, "b_op": [0-9]*, "allocs_op": \([0-9]*\)\)\{0,1\}.*/\1 \2 \4/p' "$raw" >"$new_t"
    awk -v tol="$tol" '
    NR == FNR { base_ns[$1] = $2; base_al[$1] = $3; next }
    { new_ns[$1] = $2; new_al[$1] = $3 }
    END {
        n = 0
        for (b in new_ns) if (b in base_ns && base_ns[b] > 0) ratio[n++] = new_ns[b] / base_ns[b]
        if (n == 0) { print "bench gate: no common benchmarks with the baseline" > "/dev/stderr"; exit 1 }
        # median of ratios = the machine speed factor
        m = n
        for (i = 0; i < m; i++) for (j = i + 1; j < m; j++)
            if (ratio[j] < ratio[i]) { t = ratio[i]; ratio[i] = ratio[j]; ratio[j] = t }
        med = (m % 2) ? ratio[int(m/2)] : (ratio[m/2-1] + ratio[m/2]) / 2
        printf "bench gate: %d common benchmarks, machine speed factor %.3f, tolerance %d%%\n", n, med, tol > "/dev/stderr"
        fail = 0
        for (b in new_ns) {
            if (!(b in base_ns) || base_ns[b] <= 0) continue
            norm = (new_ns[b] / base_ns[b]) / med
            if (base_ns[b] >= 1000 && norm > 1 + tol / 100.0) {
                printf "bench gate: FAIL %s: ns/op %.0f -> %.0f (%.0f%% over the suite trend)\n",
                    b, base_ns[b], new_ns[b], (norm - 1) * 100 > "/dev/stderr"
                fail = 1
            }
            if (base_al[b] != "" && new_al[b] != "" && base_al[b] > 0 &&
                new_al[b] > base_al[b] * (1 + tol / 100.0)) {
                printf "bench gate: FAIL %s: allocs/op %d -> %d\n", b, base_al[b], new_al[b] > "/dev/stderr"
                fail = 1
            }
        }
        if (fail) exit 1
        print "bench gate: OK — no benchmark regressed beyond tolerance" > "/dev/stderr"
    }' "$base_t" "$new_t" && gate_rc=0 || gate_rc=$?
    rm -f "$base_t" "$new_t"
    [ "$gate_rc" -eq 0 ] || exit 1
fi

if [ -n "$baseline" ]; then
    json="$(printf '{\n"before":\n%s,\n"after":\n%s\n}\n' "$(cat "$baseline")" "$json")"
fi

if [ -n "$out" ]; then
    printf '%s\n' "$json" >"$out"
    echo "wrote $out" >&2
else
    printf '%s\n' "$json"
fi
