#!/bin/sh
# bench.sh — run the repo's benchmark suites and emit a JSON summary.
#
# Usage:
#   scripts/bench.sh                      # print JSON to stdout
#   scripts/bench.sh -o out.json          # write JSON to a file
#   scripts/bench.sh -baseline old.json   # wrap as {before: old, after: new}
#
# Runs the root artifact benchmarks (BenchmarkFig1, BenchmarkTable2, ...)
# and the internal/sim kernel microbenchmarks with -short -benchmem so the
# whole suite finishes in seconds. BENCHTIME overrides -benchtime (default
# 1x — one iteration per benchmark, a smoke run; use e.g. BENCHTIME=2x or
# a duration like 200ms for numbers stable enough to compare).
set -eu

cd "$(dirname "$0")/.."

out=""
baseline=""
while [ $# -gt 0 ]; do
    case "$1" in
    -o)        out="$2"; shift 2 ;;
    -baseline) baseline="$2"; shift 2 ;;
    *) echo "usage: $0 [-o out.json] [-baseline before.json]" >&2; exit 2 ;;
    esac
done

benchtime="${BENCHTIME:-1x}"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench=. -short -benchtime="$benchtime" -benchmem . ./internal/sim/ | tee "$raw" >&2

# Turn `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op` lines into JSON.
json="$(awk -v commit="$commit" -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns  = $i
        if ($(i+1) == "B/op")      bop = $i
        if ($(i+1) == "allocs/op") aop = $i
    }
    if (ns == "") next
    if (n++) body = body ","
    body = body sprintf("\n    \"%s\": {\"ns_op\": %s", name, ns)
    if (bop != "") body = body sprintf(", \"b_op\": %s", bop)
    if (aop != "") body = body sprintf(", \"allocs_op\": %s", aop)
    body = body "}"
}
END {
    printf "{\n  \"commit\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {%s\n  }\n}\n",
        commit, benchtime, body
}' "$raw")"

if [ -n "$baseline" ]; then
    json="$(printf '{\n"before":\n%s,\n"after":\n%s\n}\n' "$(cat "$baseline")" "$json")"
fi

if [ -n "$out" ]; then
    printf '%s\n' "$json" >"$out"
    echo "wrote $out" >&2
else
    printf '%s\n' "$json"
fi
