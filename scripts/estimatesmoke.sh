#!/bin/sh
# estimatesmoke.sh — end-to-end smoke of the estimate (analytic roofline)
# serving path.
#
# Usage:
#   scripts/estimatesmoke.sh
#
# Builds pariod and pariobench, starts the daemon on an ephemeral port, and
# walks the estimate contract:
#   1. /run?mode=estimate answers 200 cold (miss) and byte-identical on the
#      rerun (hit) without ever moving runs_total
#   2. the same request in exact mode is still a cold miss — estimate and
#      exact cache keys are disjoint, so neither mode can alias the other
#   3. a fault-plan request in estimate mode answers a structured 422 with
#      the estimate_unsupported taxonomy class and is never cached
#   4. pariobench -estimate holds the contract at load: N estimates,
#      runs_total unmoved, estimates_total == N, p99 latency under 1ms
#   5. /sweep?mode=estimate answers the whole grid analytically, and the
#      estimate metrics counters are live
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "estimatesmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/pariobench" ./cmd/pariobench

"$tmp/pariod" -addr 127.0.0.1:0 -workers 4 >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "estimatesmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "estimatesmoke: FAIL: daemon never bound"; exit 1; }
echo "estimatesmoke: daemon up at $base"

metric() {
    curl -fsS "$base/metrics" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p"
}

# 1. Cold estimate is a miss, the rerun a byte-identical hit, and no
# simulation ever runs.
curl -fsS -D "$tmp/h1" -o "$tmp/e1" "$base/run?app=scf11&input=SMALL&mode=estimate"
grep -qi '^x-pario-cache: miss' "$tmp/h1" || { echo "estimatesmoke: FAIL: cold estimate not a miss"; cat "$tmp/h1"; exit 1; }
grep -q '"bottleneck"' "$tmp/e1" || { echo "estimatesmoke: FAIL: estimate body has no bottleneck"; cat "$tmp/e1"; exit 1; }
curl -fsS -D "$tmp/h2" -o "$tmp/e2" "$base/run?app=scf11&input=SMALL&mode=estimate"
grep -qi '^x-pario-cache: hit' "$tmp/h2" || { echo "estimatesmoke: FAIL: repeat estimate not a hit"; cat "$tmp/h2"; exit 1; }
cmp -s "$tmp/e1" "$tmp/e2" || { echo "estimatesmoke: FAIL: estimate bodies differ between runs"; exit 1; }
[ "$(metric runs_total)" = 0 ] || { echo "estimatesmoke: FAIL: estimates moved runs_total"; exit 1; }
echo "estimatesmoke: estimate cold/cached byte-identical, runs_total still 0"

# 2. Mode keys are disjoint: the exact run of the same request is cold.
curl -fsS -D "$tmp/h3" -o /dev/null "$base/run?app=scf11&input=SMALL"
grep -qi '^x-pario-cache: miss' "$tmp/h3" || { echo "estimatesmoke: FAIL: exact run after estimate was not a cold miss"; cat "$tmp/h3"; exit 1; }
[ "$(metric runs_total)" = 1 ] || { echo "estimatesmoke: FAIL: exact run did not simulate exactly once"; exit 1; }
echo "estimatesmoke: estimate and exact cache keys disjoint (exact run simulated)"

# 3. Fault plans are outside the analytic domain: structured 422, not cached.
entries_before=$(metric cache_entries)
status=$(curl -sS -o "$tmp/e422" -w '%{http_code}' "$base/run?app=ast&mode=estimate&faults=disk%3A0%3Adegrade%3D8%40t%3D0.5s..2s%3Bretry%3D4")
[ "$status" = 422 ] || { echo "estimatesmoke: FAIL: faulted estimate answered $status, want 422"; cat "$tmp/e422"; exit 1; }
grep -q '"class":"estimate_unsupported"' "$tmp/e422" || { echo "estimatesmoke: FAIL: 422 body lacks estimate_unsupported class"; cat "$tmp/e422"; exit 1; }
[ "$(metric cache_entries)" = "$entries_before" ] || { echo "estimatesmoke: FAIL: refused estimate polluted the cache"; exit 1; }
echo "estimatesmoke: fault-plan estimate refused with 422 estimate_unsupported, cache clean"

# 4. The bench estimate drive asserts the contract at load (p99 < 1ms).
"$tmp/pariobench" -addr "${base#http://}" -estimate -n 300

# 5. A whole sweep answered analytically; counters live.
curl -fsS -D "$tmp/h4" -o "$tmp/s1" "$base/sweep?app=fft&procs=1,2,4&opt=both&mode=estimate"
nlines=$(wc -l <"$tmp/s1")
[ "$nlines" = 7 ] || { echo "estimatesmoke: FAIL: estimate sweep streamed $nlines lines, want 6 points + summary"; cat "$tmp/s1"; exit 1; }
grep -q '"done":true' "$tmp/s1" || { echo "estimatesmoke: FAIL: no done summary"; exit 1; }
[ "$(metric runs_total)" = 1 ] || { echo "estimatesmoke: FAIL: estimate sweep simulated"; exit 1; }
est_total=$(metric estimates_total)
[ "$est_total" -ge 308 ] || { echo "estimatesmoke: FAIL: estimates_total=$est_total, want >= 308"; exit 1; }
echo "estimatesmoke: estimate sweep answered analytically, estimates_total=$est_total"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "estimatesmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
grep -q 'pariod: drained' "$tmp/pariod.log" || { echo "estimatesmoke: FAIL: no drain confirmation"; cat "$tmp/pariod.log"; exit 1; }
echo "estimatesmoke: graceful drain confirmed"
echo "estimatesmoke: OK"
