#!/bin/sh
# clustersmoke.sh — end-to-end smoke of the sharded pariod cluster.
#
# Usage:
#   scripts/clustersmoke.sh
#
# Builds pariod and pariobench, boots a 3-node cluster on loopback ports
# (each node with its own persistent disk cache), and walks the cluster
# contract:
#   1. pariobench -cluster: the same key answers byte-identical bodies from
#      every node, cluster-wide runs_total == unique cold keys (one
#      simulation per key no matter which node is asked), repeat pass
#      all-cache with zero new runs
#   2. /metrics on every node carries the cluster identity and the peer
#      proxy counters actually moved — the work really was sharded
#   3. kill one node and restart it on the same cache directory: a key it
#      owns answers X-Pario-Cache: l2 from disk, with the restarted node's
#      runs_total still zero — restarts never re-simulate
#   4. liveness vs readiness: /healthz and /healthz?ready=1 both 200 on a
#      healthy node (the drain-time 503 is pinned by unit test)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid0=""; pid1=""; pid2=""
cleanup() {
    for p in "$pid0" "$pid1" "$pid2"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "clustersmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/pariobench" ./cmd/pariobench

# Pick a contiguous port triple from the PID and probe by actually booting
# node 0; collisions retry on the next stride.
peers=""
p0=""; p1=""; p2=""
start_node() { # id port log
    "$tmp/pariod" -addr "127.0.0.1:$2" -node-id "$1" -peers "$peers" \
        -workers 2 -cache-dir "$tmp/cache$1" -cache-disk-bytes 16777216 \
        >"$3" 2>&1 &
}
wait_up() { # log pidvarname
    i=0
    while [ $i -lt 100 ]; do
        grep -q 'pariod: listening on' "$1" && return 0
        kill -0 "$2" 2>/dev/null || return 1
        i=$((i+1)); sleep 0.1
    done
    return 1
}

try=0
while [ $try -lt 5 ]; do
    base_port=$(( 20000 + ( ( $$ + try * 131 ) % 20000 ) ))
    p0=$base_port; p1=$((base_port+1)); p2=$((base_port+2))
    peers="127.0.0.1:$p0,127.0.0.1:$p1,127.0.0.1:$p2"
    start_node 0 "$p0" "$tmp/node0.log"; pid0=$!
    if wait_up "$tmp/node0.log" "$pid0"; then break; fi
    kill "$pid0" 2>/dev/null || true; wait "$pid0" 2>/dev/null || true; pid0=""
    try=$((try+1))
done
[ -n "$pid0" ] || { echo "clustersmoke: FAIL: could not bind a port triple"; exit 1; }

start_node 1 "$p1" "$tmp/node1.log"; pid1=$!
start_node 2 "$p2" "$tmp/node2.log"; pid2=$!
wait_up "$tmp/node1.log" "$pid1" || { cat "$tmp/node1.log"; echo "clustersmoke: FAIL: node 1 never bound"; exit 1; }
wait_up "$tmp/node2.log" "$pid2" || { cat "$tmp/node2.log"; echo "clustersmoke: FAIL: node 2 never bound"; exit 1; }
echo "clustersmoke: 3 nodes up on $peers"

metric() { # port name
    curl -fsS "http://127.0.0.1:$1/metrics" | sed -n "s/.*\"$2\": *\([0-9a-z]*\).*/\1/p" | head -1
}

# 4. Liveness and readiness both answer 200 while healthy.
for p in "$p0" "$p1" "$p2"; do
    curl -fsS "http://127.0.0.1:$p/healthz" >/dev/null
    curl -fsS "http://127.0.0.1:$p/healthz?ready=1" >/dev/null
done
echo "clustersmoke: all nodes live and ready"

# 1. The bench cluster drive asserts the sharding invariants end to end.
"$tmp/pariobench" -cluster "$peers" -n 24

# 2. Cluster identity and proxy counters are live on every node.
proxied_sum=0
for p in "$p0" "$p1" "$p2"; do
    en=$(metric "$p" cluster_enabled)
    [ "$en" = "true" ] || { echo "clustersmoke: FAIL: node :$p cluster_enabled=$en"; exit 1; }
    pp=$(metric "$p" peer_proxied_total); pp=${pp:-0}
    proxied_sum=$((proxied_sum + pp))
done
[ "$proxied_sum" -gt 0 ] || { echo "clustersmoke: FAIL: no request was ever proxied — sharding inert"; exit 1; }
echo "clustersmoke: cluster metrics live, peer_proxied_total sum=$proxied_sum"

# 3. Restart proof. Find a bench-driven key that node 2 owns by reading the
# X-Pario-Owner header (24 keys over 3 nodes: some are node 2's).
owner_url="http://127.0.0.1:$p2"
found=""
i=1
while [ $i -le 24 ]; do
    curl -fsS -D "$tmp/oh" -o /dev/null "http://127.0.0.1:$p0/run?app=scf30&input=SMALL&cached_pct=$i"
    own=$(sed -n 's/^[Xx]-[Pp]ario-[Oo]wner: *//p' "$tmp/oh" | tr -d '\r')
    if [ "$own" = "$owner_url" ]; then found=$i; break; fi
    i=$((i+1))
done
[ -n "$found" ] || { echo "clustersmoke: FAIL: no key owned by node 2 among 24"; exit 1; }
echo "clustersmoke: cached_pct=$found is owned by node 2; restarting node 2"

runs_before=$(metric "$p2" runs_total)
kill -TERM "$pid2"
wait "$pid2" || { echo "clustersmoke: FAIL: node 2 exited non-zero"; cat "$tmp/node2.log"; exit 1; }
pid2=""
grep -q 'pariod: drained' "$tmp/node2.log" || { echo "clustersmoke: FAIL: node 2 did not drain"; exit 1; }

start_node 2 "$p2" "$tmp/node2b.log"; pid2=$!
wait_up "$tmp/node2b.log" "$pid2" || { cat "$tmp/node2b.log"; echo "clustersmoke: FAIL: node 2 never came back"; exit 1; }
grep -q 'disk cache' "$tmp/node2b.log" || { echo "clustersmoke: FAIL: restarted node has no disk-cache recovery line"; exit 1; }

# The restarted node's L1 is empty; the key it owns must answer from disk.
curl -fsS -D "$tmp/wh" -o /dev/null "http://127.0.0.1:$p2/run?app=scf30&input=SMALL&cached_pct=$found"
grep -qi '^x-pario-cache: l2' "$tmp/wh" || { echo "clustersmoke: FAIL: restarted node did not serve its own key from disk"; cat "$tmp/wh"; exit 1; }
runs_after=$(metric "$p2" runs_total)
[ "$runs_after" = 0 ] || { echo "clustersmoke: FAIL: restarted node re-simulated (runs_total=$runs_after)"; exit 1; }
l2e=$(metric "$p2" l2_entries)
[ "${l2e:-0}" -gt 0 ] || { echo "clustersmoke: FAIL: restarted node recovered 0 disk entries"; exit 1; }
echo "clustersmoke: restart served warm from disk (l2_entries=$l2e, runs_total=0, was $runs_before before restart)"

# Graceful teardown of the remaining nodes.
for pv in pid0 pid1 pid2; do
    eval "p=\$$pv"
    [ -n "$p" ] || continue
    kill -TERM "$p"
    wait "$p" || { echo "clustersmoke: FAIL: $pv exited non-zero"; exit 1; }
    eval "$pv=\"\""
done
echo "clustersmoke: OK"
