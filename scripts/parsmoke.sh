#!/bin/sh
# parsmoke.sh — end-to-end smoke of intra-run event parallelism.
#
# Usage:
#   scripts/parsmoke.sh
#
# Builds iosim, pariod and pariobench, then walks the parallelism
# contract at every layer:
#   1. iosim -sim-parallel 1 and -sim-parallel 8 produce byte-identical
#      JSON for a representative run (the kernel determinism guarantee)
#   2. pariobench -parallel 8 drives a paired sequential/parallel server
#      pair and holds key + body identity plus grant accounting
#   3. a pariod started with -max-parallel 8 -pprof-addr serves wide
#      interactive runs, reports them in /metrics, exposes pprof on its
#      own listener only, and drains gracefully
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "parsmoke: building..."
go build -o "$tmp/iosim" ./cmd/iosim
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/pariobench" ./cmd/pariobench

# 1. CLI determinism: the same run at parallelism 1 and 8 must serialize
#    to the same bytes.
"$tmp/iosim" -sim-parallel 1 -app scf11 -procs 4 -input SMALL -json >"$tmp/seq.json"
"$tmp/iosim" -sim-parallel 8 -app scf11 -procs 4 -input SMALL -json >"$tmp/par.json"
cmp -s "$tmp/seq.json" "$tmp/par.json" || {
    echo "parsmoke: FAIL: iosim output differs between -sim-parallel 1 and 8"
    diff "$tmp/seq.json" "$tmp/par.json" || true
    exit 1
}
echo "parsmoke: iosim byte-identical at -sim-parallel 1 and 8"

# 2. The paired-server contract drive: byte identity, grant accounting,
#    honest fallback bookkeeping.
"$tmp/pariobench" -parallel 8 -n 12

# 3. A live daemon with wide parallelism and the pprof hook.
"$tmp/pariod" -addr 127.0.0.1:0 -max-parallel 8 -pprof-addr 127.0.0.1:0 \
    >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "parsmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "parsmoke: FAIL: daemon never bound"; exit 1; }
pprof=$(sed -n 's,^pariod: pprof on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
[ -n "$pprof" ] || { echo "parsmoke: FAIL: no pprof address in startup log"; cat "$tmp/pariod.log"; exit 1; }
echo "parsmoke: daemon up at $base, pprof at $pprof"

req='{"app":"scf11","procs":4,"input":"SMALL"}'
curl -fsS -o "$tmp/b1" -H 'Content-Type: application/json' -d "$req" "$base/run"

metrics=$(curl -fsS "$base/metrics")
maxpar=$(printf '%s' "$metrics" | sed -n 's/.*"sim_parallel_max": *\([0-9]*\).*/\1/p')
wide=$(printf '%s' "$metrics" | sed -n 's/.*"sim_parallel_wide_runs_total": *\([0-9]*\).*/\1/p')
[ "$maxpar" = 8 ] || { echo "parsmoke: FAIL: sim_parallel_max = $maxpar, want 8"; exit 1; }
[ "${wide:-0}" -ge 1 ] || { echo "parsmoke: FAIL: no wide run recorded: $metrics"; exit 1; }
echo "parsmoke: daemon granted $wide wide run(s) at max $maxpar lanes"

# The wide daemon's body must match the sequential CLI's report fields —
# compare the golden-stable elapsed field as a cheap cross-check.
grep -q '"exec_sec"' "$tmp/b1" || { echo "parsmoke: FAIL: run body missing exec_sec"; exit 1; }

curl -fsS "$pprof" >/dev/null || { echo "parsmoke: FAIL: pprof index unreachable"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/debug/pprof/")
[ "$code" != 200 ] || { echo "parsmoke: FAIL: service mux exposes /debug/pprof/"; exit 1; }
echo "parsmoke: pprof on its own listener only"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "parsmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
grep -q 'pariod: drained' "$tmp/pariod.log" || { echo "parsmoke: FAIL: no drain confirmation"; cat "$tmp/pariod.log"; exit 1; }
echo "parsmoke: graceful drain confirmed"
echo "parsmoke: OK"
