#!/bin/sh
# loadsmoke.sh — end-to-end smoke of the pariod serving stack.
#
# Usage:
#   scripts/loadsmoke.sh
#
# Builds pariod and pariobench, starts the daemon on an ephemeral port,
# then walks the full service contract:
#   1. /healthz answers ok
#   2. a cold run misses the cache, a rerun hits it, bodies byte-identical
#   3. the run counter does not move on the cached rerun
#   4. pariobench's mixed hot/cold stream holds runs == misses
#   5. SIGTERM drains gracefully (daemon prints "drained" and exits 0)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "loadsmoke: building..."
go build -o "$tmp/pariod" ./cmd/pariod
go build -o "$tmp/pariobench" ./cmd/pariobench

"$tmp/pariod" -addr 127.0.0.1:0 >"$tmp/pariod.log" 2>&1 &
daemon_pid=$!

# The daemon prints "pariod: listening on http://HOST:PORT" once bound.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's,^pariod: listening on \(http://[^ ]*\)$,\1,p' "$tmp/pariod.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$tmp/pariod.log"; echo "loadsmoke: FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "loadsmoke: FAIL: daemon never bound"; exit 1; }
echo "loadsmoke: daemon up at $base"

curl -fsS "$base/healthz" >/dev/null || { echo "loadsmoke: FAIL: healthz"; exit 1; }

req='{"app":"scf11","procs":4,"input":"SMALL"}'
curl -fsS -D "$tmp/h1" -o "$tmp/b1" -H 'Content-Type: application/json' -d "$req" "$base/run"
grep -qi '^x-pario-cache: miss' "$tmp/h1" || { echo "loadsmoke: FAIL: cold run was not a miss"; cat "$tmp/h1"; exit 1; }
runs1=$(curl -fsS "$base/metrics" | sed -n 's/.*"runs_total": *\([0-9]*\).*/\1/p')

curl -fsS -D "$tmp/h2" -o "$tmp/b2" -H 'Content-Type: application/json' -d "$req" "$base/run"
grep -qi '^x-pario-cache: hit' "$tmp/h2" || { echo "loadsmoke: FAIL: rerun was not a hit"; cat "$tmp/h2"; exit 1; }
cmp -s "$tmp/b1" "$tmp/b2" || { echo "loadsmoke: FAIL: cached body differs from fresh body"; exit 1; }
runs2=$(curl -fsS "$base/metrics" | sed -n 's/.*"runs_total": *\([0-9]*\).*/\1/p')
[ "$runs1" = "$runs2" ] || { echo "loadsmoke: FAIL: cached rerun re-simulated ($runs1 -> $runs2)"; exit 1; }
echo "loadsmoke: cold/cached contract holds (runs_total stayed at $runs1)"

"$tmp/pariobench" -addr "${base#http://}" -n 40 -c 8 -hot 0.8

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" = 0 ] || { echo "loadsmoke: FAIL: daemon exited $rc"; cat "$tmp/pariod.log"; exit 1; }
grep -q 'pariod: drained' "$tmp/pariod.log" || { echo "loadsmoke: FAIL: no drain confirmation"; cat "$tmp/pariod.log"; exit 1; }
echo "loadsmoke: graceful drain confirmed"
echo "loadsmoke: OK"
