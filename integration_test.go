// Cross-module integration tests: invariants that must hold across the
// whole stack — applications, I/O libraries, file system and kernel
// together — at moderate scale.
package pario_test

import (
	"testing"

	"pario/internal/apps/ast"
	"pario/internal/apps/btio"
	"pario/internal/apps/fft"
	"pario/internal/apps/scf"
	"pario/internal/core"
	"pario/internal/machine"
	"pario/internal/trace"
)

// runAll executes a small configuration of every application and returns
// the reports keyed by name.
func runAll(t *testing.T) map[string]core.Report {
	t.Helper()
	pl, err := machine.ParagonLarge(12)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := machine.ParagonSmall(2)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := machine.SP2()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]core.Report{}
	r, err := scf.Run11(scf.Config11{Machine: pl, Input: scf.Input{Name: "t", N: 32}, Procs: 4, Version: scf.Passion})
	if err != nil {
		t.Fatal(err)
	}
	out["scf11"] = r
	r, err = scf.Run30(scf.Config30{Machine: pl, Input: scf.Input{Name: "t", N: 32}, Procs: 4, CachedPct: 50, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	out["scf30"] = r
	r, err = fft.Run(fft.Config{Machine: ps, Procs: 4, N: 256, BufferBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	out["fft"] = r
	r, err = btio.Run(btio.Config{Machine: sp, Procs: 4, Class: btio.Class{Name: "t", N: 16, Dumps: 3}})
	if err != nil {
		t.Fatal(err)
	}
	out["btio"] = r
	r, err = ast.Run(ast.Config{Machine: pl, Procs: 4, N: 256, Arrays: 2, Dumps: 2})
	if err != nil {
		t.Fatal(err)
	}
	out["ast"] = r
	return out
}

// TestEveryApplicationReportIsCoherent checks universal report invariants
// for all five applications.
func TestEveryApplicationReportIsCoherent(t *testing.T) {
	for name, rep := range runAll(t) {
		if rep.ExecSec <= 0 {
			t.Errorf("%s: non-positive exec time", name)
		}
		if rep.IOMaxSec <= 0 || rep.IOMaxSec > rep.ExecSec {
			t.Errorf("%s: per-process I/O %g outside (0, exec=%g]", name, rep.IOMaxSec, rep.ExecSec)
		}
		if rep.IOAggSec+1e-9 < rep.IOMaxSec {
			t.Errorf("%s: aggregate I/O %g below per-process max %g", name, rep.IOAggSec, rep.IOMaxSec)
		}
		if rep.IOAggSec > rep.IOMaxSec*float64(rep.Procs)+1e-9 {
			t.Errorf("%s: aggregate I/O %g exceeds procs*max", name, rep.IOAggSec)
		}
		total := rep.Trace.Total()
		if total.Count <= 0 {
			t.Errorf("%s: no traced operations", name)
		}
		if rep.BytesRead < 0 || rep.BytesWritten < 0 {
			t.Errorf("%s: negative volumes", name)
		}
		if len(rep.PerRankIOSec) != rep.Procs {
			t.Errorf("%s: per-rank entries %d != procs %d", name, len(rep.PerRankIOSec), rep.Procs)
		}
		if im := rep.IOImbalance(); im < 1.0 {
			t.Errorf("%s: imbalance %g below 1", name, im)
		}
	}
}

// TestEveryApplicationIsDeterministic runs each app twice and compares the
// full report.
func TestEveryApplicationIsDeterministic(t *testing.T) {
	a, b := runAll(t), runAll(t)
	for name := range a {
		ra, rb := a[name], b[name]
		if ra.ExecSec != rb.ExecSec || ra.IOAggSec != rb.IOAggSec {
			t.Errorf("%s: runs differ: exec %g vs %g, I/O %g vs %g",
				name, ra.ExecSec, rb.ExecSec, ra.IOAggSec, rb.IOAggSec)
		}
		if ra.Trace.Total() != rb.Trace.Total() {
			t.Errorf("%s: traced totals differ", name)
		}
	}
}

// TestOptimizationsNeverIncreaseExecTime applies each application's paper
// optimization at its test scale and requires an improvement.
func TestOptimizationsNeverIncreaseExecTime(t *testing.T) {
	pl, _ := machine.ParagonLarge(12)
	ps, _ := machine.ParagonSmall(2)
	sp, _ := machine.SP2()

	type pair struct {
		name      string
		base, opt func() (core.Report, error)
	}
	pairs := []pair{
		{
			"scf11 interface+prefetch",
			func() (core.Report, error) {
				return scf.Run11(scf.Config11{Machine: pl, Input: scf.Input{Name: "t", N: 32}, Procs: 4, Version: scf.Original})
			},
			func() (core.Report, error) {
				return scf.Run11(scf.Config11{Machine: pl, Input: scf.Input{Name: "t", N: 32}, Procs: 4, Version: scf.PassionPrefetch})
			},
		},
		{
			"fft layout",
			func() (core.Report, error) {
				return fft.Run(fft.Config{Machine: ps, Procs: 4, N: 256, BufferBytes: 256 << 10})
			},
			func() (core.Report, error) {
				return fft.Run(fft.Config{Machine: ps, Procs: 4, N: 256, BufferBytes: 256 << 10, OptimizedLayout: true})
			},
		},
		{
			"btio collective",
			func() (core.Report, error) {
				return btio.Run(btio.Config{Machine: sp, Procs: 16, Class: btio.Class{Name: "t", N: 16, Dumps: 3}})
			},
			func() (core.Report, error) {
				return btio.Run(btio.Config{Machine: sp, Procs: 16, Class: btio.Class{Name: "t", N: 16, Dumps: 3}, Collective: true})
			},
		},
		{
			"ast collective",
			func() (core.Report, error) {
				return ast.Run(ast.Config{Machine: pl, Procs: 8, N: 256, Arrays: 2, Dumps: 2})
			},
			func() (core.Report, error) {
				return ast.Run(ast.Config{Machine: pl, Procs: 8, N: 256, Arrays: 2, Dumps: 2, Optimized: true})
			},
		},
	}
	for _, pr := range pairs {
		base, err := pr.base()
		if err != nil {
			t.Fatalf("%s base: %v", pr.name, err)
		}
		opt, err := pr.opt()
		if err != nil {
			t.Fatalf("%s opt: %v", pr.name, err)
		}
		if opt.ExecSec >= base.ExecSec {
			t.Errorf("%s: optimized exec %g not below base %g", pr.name, opt.ExecSec, base.ExecSec)
		}
	}
}

// TestVolumeConservationAcrossStack checks that bytes recorded at the
// application interface equal bytes arriving at the I/O nodes' disks for a
// write-dominant app (no loss or duplication through pio/pfs/ionode).
func TestVolumeConservationAcrossStack(t *testing.T) {
	sp, _ := machine.SP2()
	cfg := btio.Config{Machine: sp, Procs: 4, Class: btio.Class{Name: "t", N: 16, Dumps: 3}}
	rep, err := btio.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Get(trace.Write).Bytes != cfg.TotalIOBytes() {
		t.Fatalf("app-level bytes %d != workload %d",
			rep.Trace.Get(trace.Write).Bytes, cfg.TotalIOBytes())
	}
}

// TestMoreIONodesNeverHurtLargeScale: adding I/O nodes must not increase
// execution time for the contention-bound SCF workload.
func TestMoreIONodesNeverHurtLargeScale(t *testing.T) {
	exec := func(nio int) float64 {
		m, err := machine.ParagonLarge(nio)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := scf.Run11(scf.Config11{Machine: m, Input: scf.Input{Name: "t", N: 48}, Procs: 32, Version: scf.Passion})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecSec
	}
	e12, e64 := exec(12), exec(64)
	if e64 > e12*1.02 {
		t.Fatalf("64 I/O nodes slower than 12: %g vs %g", e64, e12)
	}
}
